// Package dwt implements discrete-wavelet-transform fusion as a pure-Go
// tiled kernel: a multi-level 2D Haar transform per band, detail
// subbands selected by an activity score (variance + histogram entropy
// of the coefficient magnitudes), the deepest approximation averaged,
// and the fused coefficients inverse-transformed into one plane.
//
// Per tile, the bands are split into three contiguous groups; each group
// fuses into one intensity plane that is min/max-stretched into the R, G
// or B channel (same composite reading as the pyramid path).
//
// Odd extents are handled by pairing (0,1), (2,3), … and copying the
// unpaired tail sample into the approximation half, so the transform is
// exactly invertible at every tile shape — including the single-row
// slabs small tiles decompose into.
//
// Determinism contract: only the per-band forward transform fans out
// (linalg.ParallelShards, one shard per band, each writing its own
// slot); scoring, selection, merging and the inverse transform run
// sequentially in fixed band/level/subband order, so output is
// bit-identical at every parallelism setting.
package dwt

import (
	"fmt"
	"math"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// maxLevels caps the decomposition depth.
const maxLevels = 3

// entropyBins is the histogram resolution of the entropy term.
const entropyBins = 64

// Levels returns the number of 2D Haar decomposition steps for a w×h
// plane: halve while the short side stays at least 8 samples, capped at
// maxLevels, and at least one step so degenerate tiles still fuse
// through the wavelet domain.
func Levels(w, h int) int {
	m := w
	if h < m {
		m = h
	}
	l := 1
	for s := m; s >= 8 && l < maxLevels; s = (s + 1) / 2 {
		l++
	}
	return l
}

// Fuse fuses tile into packed RGB (3 bytes per pixel, row-major). It is
// a pure function of the tile contents; rgb must hold tile.Pixels()*3
// bytes.
func Fuse(tile *hsi.Cube, parallelism int, rgb []byte) error {
	if err := tile.Validate(); err != nil {
		return err
	}
	if len(rgb) < tile.Pixels()*3 {
		return fmt.Errorf("dwt: rgb buffer %d for %d pixels", len(rgb), tile.Pixels())
	}
	for ch, g := range bandGroups(tile.Bands) {
		plane := fuseGroup(tile, g.lo, g.hi, parallelism)
		writeChannel(rgb, plane, ch)
	}
	return nil
}

// group is a contiguous half-open band interval.
type group struct{ lo, hi int }

// bandGroups splits bands into three contiguous groups (first groups get
// the extra bands); with fewer than 3 bands trailing groups reuse the
// last band so every channel gets a plane.
func bandGroups(bands int) [3]group {
	var out [3]group
	base, extra := bands/3, bands%3
	lo := 0
	for i := 0; i < 3; i++ {
		n := base
		if i < extra {
			n++
		}
		if n == 0 {
			n = 1
			if lo >= bands {
				lo = bands - 1
			}
		}
		out[i] = group{lo: lo, hi: lo + n}
		if out[i].hi > bands {
			out[i].hi = bands
		}
		lo = out[i].hi
	}
	return out
}

// region is one rectangular coefficient region of the packed transform
// plane: origin (x0, y0), extent w×h.
type region struct{ x0, y0, w, h int }

// subbands returns the coefficient layout of a levels-deep transform of
// a w×h plane: per level the three detail regions (LH: horizontal
// detail below, HL: vertical detail right, HH: diagonal corner), plus
// the final approximation region. Approximation halves ceil-wise each
// level, matching the odd-length pairing rule.
func subbands(w, h, levels int) (details [][3]region, approx region) {
	cw, ch := w, h
	details = make([][3]region, levels)
	for l := 0; l < levels; l++ {
		aw, ah := (cw+1)/2, (ch+1)/2
		details[l] = [3]region{
			{x0: aw, y0: 0, w: cw - aw, h: ah},       // HL
			{x0: 0, y0: ah, w: aw, h: ch - ah},       // LH
			{x0: aw, y0: ah, w: cw - aw, h: ch - ah}, // HH
		}
		cw, ch = aw, ah
	}
	return details, region{x0: 0, y0: 0, w: cw, h: ch}
}

// fuseGroup fuses the band planes of [lo, hi) into one intensity plane
// via per-subband activity selection in the Haar domain.
func fuseGroup(tile *hsi.Cube, lo, hi, parallelism int) []float64 {
	w, h := tile.Width, tile.Height
	n := hi - lo
	levels := Levels(w, h)

	// Forward transform per band: one shard per band, own slot each.
	coeffs := make([][]float64, n)
	linalg.ParallelShards(n, parallelism, func(b int) {
		plane := bandPlane(tile, lo+b)
		forward(plane, w, h, levels)
		coeffs[b] = plane
	})

	details, approx := subbands(w, h, levels)
	fused := make([]float64, w*h)

	// Detail subbands: per level and subband pick the source band with
	// the highest activity score, ascending band order with strict > so
	// ties resolve to the lowest band.
	for l := 0; l < levels; l++ {
		for s := 0; s < 3; s++ {
			r := details[l][s]
			if r.w == 0 || r.h == 0 {
				continue
			}
			best, bestScore := 0, activity(coeffs[0], w, r)
			for b := 1; b < n; b++ {
				if sc := activity(coeffs[b], w, r); sc > bestScore {
					best, bestScore = b, sc
				}
			}
			copyRegion(fused, coeffs[best], w, r)
		}
	}

	// Deepest approximation: average across bands in ascending order.
	inv := 1 / float64(n)
	for y := approx.y0; y < approx.y0+approx.h; y++ {
		for x := approx.x0; x < approx.x0+approx.w; x++ {
			var sum float64
			for b := 0; b < n; b++ {
				sum += coeffs[b][y*w+x]
			}
			fused[y*w+x] = sum * inv
		}
	}

	inverse(fused, w, h, levels)
	return fused
}

// bandPlane copies band b of the tile into a row-major float64 plane.
func bandPlane(tile *hsi.Cube, b int) []float64 {
	out := make([]float64, tile.Pixels())
	bands := tile.Bands
	for p := range out {
		out[p] = float64(tile.Data[p*bands+b])
	}
	return out
}

// activity scores a subband region: coefficient variance plus the
// entropy of a 64-bin histogram of |coefficient| normalized by the
// region max. Both terms accumulate in row-major scan order.
func activity(coeffs []float64, stride int, r region) float64 {
	count := r.w * r.h
	var sum, maxAbs float64
	for y := r.y0; y < r.y0+r.h; y++ {
		for x := r.x0; x < r.x0+r.w; x++ {
			v := coeffs[y*stride+x]
			sum += v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	mean := sum / float64(count)
	var variance float64
	var hist [entropyBins]int
	for y := r.y0; y < r.y0+r.h; y++ {
		for x := r.x0; x < r.x0+r.w; x++ {
			v := coeffs[y*stride+x]
			d := v - mean
			variance += d * d
			bin := 0
			if maxAbs > 0 {
				bin = int(math.Abs(v) / maxAbs * (entropyBins - 1))
			}
			hist[bin]++
		}
	}
	variance /= float64(count)
	var entropy float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(count)
		entropy -= p * math.Log2(p)
	}
	return variance + entropy
}

// copyRegion copies region r of src into dst (same stride).
func copyRegion(dst, src []float64, stride int, r region) {
	for y := r.y0; y < r.y0+r.h; y++ {
		row := y * stride
		copy(dst[row+r.x0:row+r.x0+r.w], src[row+r.x0:row+r.x0+r.w])
	}
}

// haarForward1D transforms n samples read from buf with the given
// stride in place: pair averages packed first, pair half-differences
// after, an odd tail sample copied to the end of the approximation.
func haarForward1D(buf []float64, n, stride int, tmp []float64) {
	half := (n + 1) / 2
	for i := 0; i+1 < n; i += 2 {
		a, b := buf[i*stride], buf[(i+1)*stride]
		tmp[i/2] = (a + b) / 2
		tmp[half+i/2] = (a - b) / 2
	}
	if n%2 == 1 {
		tmp[half-1] = buf[(n-1)*stride]
	}
	for i := 0; i < n; i++ {
		buf[i*stride] = tmp[i]
	}
}

// haarInverse1D inverts haarForward1D.
func haarInverse1D(buf []float64, n, stride int, tmp []float64) {
	half := (n + 1) / 2
	for i := 0; i+1 < n; i += 2 {
		s, d := buf[(i/2)*stride], buf[(half+i/2)*stride]
		tmp[i] = s + d
		tmp[i+1] = s - d
	}
	if n%2 == 1 {
		tmp[n-1] = buf[(half-1)*stride]
	}
	for i := 0; i < n; i++ {
		buf[i*stride] = tmp[i]
	}
}

// forward runs a levels-deep 2D Haar transform in place: per level all
// rows of the current approximation region, then all columns.
func forward(plane []float64, w, h, levels int) {
	tmp := make([]float64, max(w, h))
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		for y := 0; y < ch; y++ {
			haarForward1D(plane[y*w:], cw, 1, tmp)
		}
		for x := 0; x < cw; x++ {
			haarForward1D(plane[x:], ch, w, tmp)
		}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
}

// inverse undoes forward: levels in reverse order, columns then rows.
func inverse(plane []float64, w, h, levels int) {
	tmp := make([]float64, max(w, h))
	// Recompute the per-level region extents forward, then walk back.
	dims := make([][2]int, levels)
	cw, ch := w, h
	for l := 0; l < levels; l++ {
		dims[l] = [2]int{cw, ch}
		cw, ch = (cw+1)/2, (ch+1)/2
	}
	for l := levels - 1; l >= 0; l-- {
		cw, ch = dims[l][0], dims[l][1]
		for x := 0; x < cw; x++ {
			haarInverse1D(plane[x:], ch, w, tmp)
		}
		for y := 0; y < ch; y++ {
			haarInverse1D(plane[y*w:], cw, 1, tmp)
		}
	}
}

// writeChannel min/max-stretches plane to [0, 255] and stores it in
// channel ch of the packed RGB buffer. A flat plane maps to 0.
func writeChannel(rgb []byte, plane []float64, ch int) {
	lo, hi := plane[0], plane[0]
	for _, v := range plane {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	for i, v := range plane {
		s := math.Round((v - lo) * scale)
		if s < 0 {
			s = 0
		} else if s > 255 {
			s = 255
		}
		rgb[i*3+ch] = byte(s)
	}
}
