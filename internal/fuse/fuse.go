// Package fuse is the fusion-algorithm registry: the single place the
// engine resolves core.Options.Algorithm ("pct", "pyramid", "dwt") to an
// implementation. Two execution shapes coexist behind one entry type:
//
//   - Protocol algorithms (pct) run the multi-phase manager/worker
//     conversation — screen, merge, statistics, eigen, transform — and
//     register without a tile kernel; the manager keeps driving the
//     phases exactly as before this registry existed.
//   - Tile-kernel algorithms (pyramid, dwt) are pure per-tile functions:
//     one request ships a sub-cube, one reply returns its fused RGB
//     slab. The manager runs them through a single distribute/collect
//     phase with the same prefetch, reissue, and streaming behavior as
//     the screen phase.
//
// Every registered kernel obeys the repo's determinism contract: output
// is bit-identical at every core.Options.Parallelism because all
// parallel fan-out goes through linalg's fixed shard grids and every
// cross-band reduction runs in fixed band order (fusionlint's detsource
// analyzer polices this package tree like the pct kernels).
package fuse

import (
	"sort"
	"strings"

	"resilientfusion/internal/fuse/dwt"
	"resilientfusion/internal/fuse/pyramid"
	"resilientfusion/internal/hsi"
)

// ID is an algorithm's stable wire identifier, carried in the service
// job envelope and the cluster worker args so pooled and remote workers
// instantiate the same kernel the manager dispatches for. IDs are
// append-only: reusing or renumbering one would let two deployments
// disagree about what a job computes.
type ID uint32

const (
	IDPCT     ID = 0
	IDPyramid ID = 1
	IDDWT     ID = 2
)

// FuseTileFunc fuses one extracted tile into packed RGB bytes (3 bytes
// per pixel, row-major, len >= tile.Pixels()*3). Implementations must be
// pure functions of the tile contents and bit-identical at every
// parallelism setting.
type FuseTileFunc func(tile *hsi.Cube, parallelism int, rgb []byte) error

// Algorithm is one registered fusion implementation.
type Algorithm struct {
	// Name is the canonical lower-case name Options.Algorithm resolves to.
	Name string
	// ID is the stable wire identifier (see ID).
	ID ID
	// FuseTile is the per-tile kernel, or nil for protocol algorithms
	// (pct) whose computation is the multi-phase manager/worker exchange.
	FuseTile FuseTileFunc
}

var (
	byName = make(map[string]Algorithm)
	byID   = make(map[ID]Algorithm)
	// names holds registration order; Names sorts a copy rather than
	// ranging over byName so no map iteration order ever leaks out.
	names []string
)

// Register adds an algorithm to the registry. It panics on a duplicate
// name or ID — registration happens in init functions, so a collision is
// a programming error, not a runtime condition.
func Register(a Algorithm) {
	if a.Name == "" || a.Name != strings.ToLower(a.Name) {
		panic("fuse: algorithm name must be non-empty lower-case: " + a.Name)
	}
	if _, dup := byName[a.Name]; dup {
		panic("fuse: duplicate algorithm name " + a.Name)
	}
	if _, dup := byID[a.ID]; dup {
		panic("fuse: duplicate algorithm id for " + a.Name)
	}
	byName[a.Name] = a
	byID[a.ID] = a
	names = append(names, a.Name)
}

// Canonical normalizes an algorithm spelling to its registry form:
// surrounding space stripped, lower-cased, and the empty string mapped
// to "pct" (the paper's pipeline is the default). It does not check
// registration — unknown names canonicalize too, so ResultKey stays a
// pure function of Options and validation can happen once at admission.
func Canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return "pct"
	}
	return name
}

// Lookup resolves a (possibly uncanonical) name to its registered
// algorithm.
func Lookup(name string) (Algorithm, bool) {
	a, ok := byName[Canonical(name)]
	return a, ok
}

// ByID resolves a wire identifier to its registered algorithm.
func ByID(id ID) (Algorithm, bool) {
	a, ok := byID[id]
	return a, ok
}

// Names returns the registered algorithm names in sorted order (sorted,
// not map order, so callers composing error messages and docs stay
// deterministic).
func Names() []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

func init() {
	// pct is the protocol path: the manager drives the paper's 8-step
	// screen/statistics/eigen/transform exchange, so it has no tile kernel.
	Register(Algorithm{Name: "pct", ID: IDPCT})
	Register(Algorithm{Name: "pyramid", ID: IDPyramid, FuseTile: pyramid.Fuse})
	Register(Algorithm{Name: "dwt", ID: IDDWT, FuseTile: dwt.Fuse})
}
