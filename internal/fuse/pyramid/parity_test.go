package pyramid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// Parity tests, in the mold of pct/parity_test.go: the kernel must match
// a plain scalar reference bit-for-bit at every Parallelism. The
// reference implements the documented operation order — 5-tap separable
// filtering with ascending-k accumulation, ascending-band selection with
// strict >, ascending-band top-level averaging — with naive sequential
// loops and no goroutines. Sizes straddle the awkward boundaries: odd
// extents, single-row slabs (the shape small tiles decompose into), and
// parallelism far above the bands available.

var parityPar = []int{1, 2, 3, 7, 64}

func parityCube(t *testing.T, seed int64, w, h, bands int) *hsi.Cube {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := hsi.MustNewCube(w, h, bands)
	for i := range c.Data {
		c.Data[i] = float32(rng.NormFloat64()*40 + 120)
	}
	return c
}

// refFuse is the scalar reference for Fuse: same documented math, plain
// sequential loops.
func refFuse(tile *hsi.Cube) []byte {
	rgb := make([]byte, tile.Pixels()*3)
	for ch, g := range bandGroups(tile.Bands) {
		writeChannel(rgb, refFuseGroup(tile, g.lo, g.hi), ch)
	}
	return rgb
}

func refFuseGroup(tile *hsi.Cube, lo, hi int) []float64 {
	w, h := tile.Width, tile.Height
	n := hi - lo
	levels := Levels(w, h)
	dims := levelDims(w, h, levels)

	gps := make([][][]float64, n)
	rps := make([][][]float64, n)
	for b := 0; b < n; b++ {
		gp := make([][]float64, levels+1)
		gp[0] = bandPlane(tile, lo+b)
		for l := 1; l <= levels; l++ {
			gp[l] = refReduce(gp[l-1], dims[l-1].w, dims[l-1].h)
		}
		rp := make([][]float64, levels)
		for l := 0; l < levels; l++ {
			e := refExpand(gp[l+1], dims[l+1].w, dims[l+1].h, dims[l].w, dims[l].h)
			r := make([]float64, len(gp[l]))
			for i := range r {
				d := e[i]
				if d < ratioEps && d > -ratioEps {
					d = ratioEps
				}
				r[i] = gp[l][i] / d
			}
			rp[l] = r
		}
		gps[b], rps[b] = gp, rp
	}

	fused := make([][]float64, levels)
	for l := 0; l < levels; l++ {
		sel := append([]float64(nil), rps[0][l]...)
		for b := 1; b < n; b++ {
			for i, v := range rps[b][l] {
				if math.Abs(v-1) > math.Abs(sel[i]-1) {
					sel[i] = v
				}
			}
		}
		fused[l] = sel
	}
	top := make([]float64, len(gps[0][levels]))
	for b := 0; b < n; b++ {
		for i, v := range gps[b][levels] {
			top[i] += v
		}
	}
	for i := range top {
		top[i] *= 1 / float64(n)
	}
	rec := top
	for l := levels - 1; l >= 0; l-- {
		e := refExpand(rec, dims[l+1].w, dims[l+1].h, dims[l].w, dims[l].h)
		for i := range e {
			e[i] *= fused[l][i]
		}
		rec = e
	}
	return rec
}

func refReflect(i, n int) int {
	if n == 1 {
		return 0
	}
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		} else {
			i = 2*(n-1) - i
		}
	}
	return i
}

func refFilter(p []float64, w, h int) []float64 {
	tmp := make([]float64, len(p))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for k := -2; k <= 2; k++ {
				s += kernel1D[k+2] * p[y*w+refReflect(x+k, w)]
			}
			tmp[y*w+x] = s
		}
	}
	out := make([]float64, len(p))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for k := -2; k <= 2; k++ {
				s += kernel1D[k+2] * tmp[refReflect(y+k, h)*w+x]
			}
			out[y*w+x] = s
		}
	}
	return out
}

func refReduce(p []float64, w, h int) []float64 {
	f := refFilter(p, w, h)
	w2, h2 := (w+1)/2, (h+1)/2
	out := make([]float64, w2*h2)
	for y := 0; y < h2; y++ {
		for x := 0; x < w2; x++ {
			out[y*w2+x] = f[2*y*w+2*x]
		}
	}
	return out
}

func refExpand(p []float64, w2, h2, w, h int) []float64 {
	ups := make([]float64, w*h)
	for y := 0; y < h2; y++ {
		for x := 0; x < w2; x++ {
			if 2*y < h && 2*x < w {
				ups[2*y*w+2*x] = p[y*w2+x]
			}
		}
	}
	out := refFilter(ups, w, h)
	for i := range out {
		out[i] *= 4
	}
	return out
}

func TestFuseMatchesScalarReference(t *testing.T) {
	shapes := []struct{ w, h, bands int }{
		{17, 9, 7},
		{32, 5, 12},
		{21, 1, 3}, // single-row slab
		{8, 8, 2},  // fewer bands than channels
		{5, 3, 1},
	}
	for _, s := range shapes {
		tile := parityCube(t, int64(s.w*1000+s.h*10+s.bands), s.w, s.h, s.bands)
		want := refFuse(tile)
		for _, par := range parityPar {
			got := make([]byte, tile.Pixels()*3)
			if err := Fuse(tile, par, got); err != nil {
				t.Fatalf("%dx%dx%d par=%d: %v", s.w, s.h, s.bands, par, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%dx%dx%d par=%d: output differs from scalar reference",
					s.w, s.h, s.bands, par)
			}
		}
	}
}

func TestFuseParallelismInvariant(t *testing.T) {
	tile := parityCube(t, 42, 40, 24, 15)
	pars := append(append([]int(nil), parityPar...), linalg.MaxWorkers())
	var want []byte
	for _, par := range pars {
		got := make([]byte, tile.Pixels()*3)
		if err := Fuse(tile, par, got); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("par=%d output differs from par=%d", par, pars[0])
		}
	}
}

func TestFuseProducesContrast(t *testing.T) {
	tile := parityCube(t, 7, 32, 16, 9)
	rgb := make([]byte, tile.Pixels()*3)
	if err := Fuse(tile, 2, rgb); err != nil {
		t.Fatal(err)
	}
	var min, max byte = 255, 0
	for _, v := range rgb {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 30 {
		t.Fatalf("composite nearly flat: min=%d max=%d", min, max)
	}
}

func TestFuseRejectsShortBuffer(t *testing.T) {
	tile := parityCube(t, 1, 4, 4, 3)
	if err := Fuse(tile, 1, make([]byte, 5)); err == nil {
		t.Fatal("short rgb buffer accepted")
	}
}

func TestBandGroupsCoverAllBands(t *testing.T) {
	for bands := 1; bands <= 13; bands++ {
		gs := bandGroups(bands)
		covered := make([]bool, bands)
		prevHi := 0
		for i, g := range gs {
			if g.lo < 0 || g.hi > bands || g.lo >= g.hi {
				t.Fatalf("bands=%d group[%d]=%+v out of range", bands, i, g)
			}
			for b := g.lo; b < g.hi; b++ {
				covered[b] = true
			}
			if bands >= 3 && g.lo != prevHi {
				t.Fatalf("bands=%d group[%d] not contiguous", bands, i)
			}
			prevHi = g.hi
		}
		for b, ok := range covered {
			if !ok {
				t.Fatalf("bands=%d band %d uncovered", bands, b)
			}
		}
	}
}
