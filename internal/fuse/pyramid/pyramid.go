// Package pyramid implements ratio-of-low-pass (ROLP) Laplacian-pyramid
// fusion as a pure-Go tiled kernel — the classical multiresolution
// workhorse the remote-sensing surveys place alongside wavelet methods.
//
// Per tile, the bands are split into three contiguous groups; each group
// is fused into one intensity plane and min/max-stretched into the R, G
// or B channel, so the composite keeps the "spectral position becomes
// color" reading of the PCT path. Per band the kernel builds a Gaussian
// pyramid with the 5-tap Burt–Adelson kernel (a = 0.4), forms the ratio
// pyramid R_l = G_l / EXPAND(G_{l+1}), selects per coefficient the band
// whose ratio deviates most from 1 (the strongest local contrast), and
// reconstructs multiplicatively from the averaged top level.
//
// Determinism contract: the only parallel fan-out is the per-band
// pyramid construction through linalg.ParallelShards (one shard per
// band, each writing its own slot); selection and reconstruction run
// sequentially in fixed band order. Output is therefore bit-identical at
// every parallelism setting — pinned by TestFuseParallelismInvariant and
// the scalar-reference parity test.
package pyramid

import (
	"fmt"
	"math"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
)

// kernel1D is the separable 5-tap Burt–Adelson generating kernel with
// center weight a = 0.4 — the classical choice that makes REDUCE a
// near-Gaussian low-pass.
var kernel1D = [5]float64{0.05, 0.25, 0.4, 0.25, 0.05}

// ratioEps floors the EXPAND denominator so ratio coefficients stay
// finite on black regions.
const ratioEps = 1e-12

// maxLevels caps the pyramid depth; tiles are row slabs a few rows tall,
// so depth is usually limited by the tile height anyway.
const maxLevels = 4

// Levels returns the number of REDUCE steps for a w×h plane: halve while
// the short side stays at least 16 pixels, capped at maxLevels, and at
// least one step so even single-row tiles exercise the ratio path.
func Levels(w, h int) int {
	m := w
	if h < m {
		m = h
	}
	l := 1
	for s := m; s >= 16 && l < maxLevels; s = (s + 1) / 2 {
		l++
	}
	return l
}

// Fuse fuses tile into packed RGB (3 bytes per pixel, row-major). It is
// a pure function of the tile contents; rgb must hold tile.Pixels()*3
// bytes.
func Fuse(tile *hsi.Cube, parallelism int, rgb []byte) error {
	if err := tile.Validate(); err != nil {
		return err
	}
	if len(rgb) < tile.Pixels()*3 {
		return fmt.Errorf("pyramid: rgb buffer %d for %d pixels", len(rgb), tile.Pixels())
	}
	for ch, g := range bandGroups(tile.Bands) {
		plane := fuseGroup(tile, g.lo, g.hi, parallelism)
		writeChannel(rgb, plane, ch)
	}
	return nil
}

// group is a contiguous half-open band interval.
type group struct{ lo, hi int }

// bandGroups splits bands into three contiguous groups (first groups get
// the extra bands), mirroring the wavelength ordering of the cube: long
// wavelengths land in R, short in B.
func bandGroups(bands int) [3]group {
	var out [3]group
	base, extra := bands/3, bands%3
	lo := 0
	for i := 0; i < 3; i++ {
		n := base
		if i < extra {
			n++
		}
		// With fewer than 3 bands, trailing groups reuse the last band so
		// every channel gets a plane.
		if n == 0 {
			n = 1
			if lo >= bands {
				lo = bands - 1
			}
		}
		out[i] = group{lo: lo, hi: lo + n}
		if out[i].hi > bands {
			out[i].hi = bands
		}
		lo = out[i].hi
	}
	return out
}

// fuseGroup fuses the band planes of [lo, hi) into one intensity plane
// via the ROLP selection rule.
func fuseGroup(tile *hsi.Cube, lo, hi, parallelism int) []float64 {
	w, h := tile.Width, tile.Height
	n := hi - lo
	levels := Levels(w, h)
	dims := levelDims(w, h, levels)

	// Per-band Gaussian and ratio pyramids: each band is one shard
	// writing its own preallocated slot, so the fan-out is deterministic
	// by construction.
	gps := make([][][]float64, n)
	rps := make([][][]float64, n)
	linalg.ParallelShards(n, parallelism, func(b int) {
		plane := bandPlane(tile, lo+b)
		gps[b] = gaussianPyramid(plane, dims)
		rps[b] = ratioPyramid(gps[b], dims)
	})

	// Selection: per coefficient keep the ratio deviating most from 1,
	// scanned in ascending band order with a strict > so ties resolve to
	// the lowest band. Top level: plain average in ascending band order.
	fused := make([][]float64, levels+1)
	for l := 0; l < levels; l++ {
		sel := append([]float64(nil), rps[0][l]...)
		for b := 1; b < n; b++ {
			rb := rps[b][l]
			for i, v := range rb {
				if math.Abs(v-1) > math.Abs(sel[i]-1) {
					sel[i] = v
				}
			}
		}
		fused[l] = sel
	}
	top := make([]float64, len(gps[0][levels]))
	for b := 0; b < n; b++ {
		for i, v := range gps[b][levels] {
			top[i] += v
		}
	}
	inv := 1 / float64(n)
	for i := range top {
		top[i] *= inv
	}

	// Multiplicative reconstruction: F_l = R_l × EXPAND(F_{l+1}).
	rec := top
	for l := levels - 1; l >= 0; l-- {
		e := expand(rec, dims[l+1].w, dims[l+1].h, dims[l].w, dims[l].h)
		for i, r := range fused[l] {
			e[i] *= r
		}
		rec = e
	}
	return rec
}

type dim struct{ w, h int }

// levelDims returns the plane dimensions of pyramid levels 0..levels,
// each level ceil-halving the previous.
func levelDims(w, h, levels int) []dim {
	out := make([]dim, levels+1)
	out[0] = dim{w, h}
	for l := 1; l <= levels; l++ {
		out[l] = dim{(out[l-1].w + 1) / 2, (out[l-1].h + 1) / 2}
	}
	return out
}

// bandPlane copies band b of the tile into a row-major float64 plane.
func bandPlane(tile *hsi.Cube, b int) []float64 {
	out := make([]float64, tile.Pixels())
	bands := tile.Bands
	for p := range out {
		out[p] = float64(tile.Data[p*bands+b])
	}
	return out
}

// gaussianPyramid builds G_0..G_levels by repeated REDUCE.
func gaussianPyramid(plane []float64, dims []dim) [][]float64 {
	out := make([][]float64, len(dims))
	out[0] = plane
	for l := 1; l < len(dims); l++ {
		out[l] = reduce(out[l-1], dims[l-1].w, dims[l-1].h)
	}
	return out
}

// ratioPyramid forms R_l = G_l / max(EXPAND(G_{l+1}), ratioEps) for
// l = 0..levels-1.
func ratioPyramid(gp [][]float64, dims []dim) [][]float64 {
	levels := len(dims) - 1
	out := make([][]float64, levels)
	for l := 0; l < levels; l++ {
		e := expand(gp[l+1], dims[l+1].w, dims[l+1].h, dims[l].w, dims[l].h)
		r := make([]float64, len(gp[l]))
		for i, g := range gp[l] {
			d := e[i]
			if d < ratioEps && d > -ratioEps {
				d = ratioEps
			}
			r[i] = g / d
		}
		out[l] = r
	}
	return out
}

// reflect mirrors an out-of-range index back into [0, n) (whole-sample
// reflection), the standard pyramid boundary rule. n == 1 degenerates to
// index 0 so single-row and single-column planes filter fine.
func reflect(i, n int) int {
	if n == 1 {
		return 0
	}
	for i < 0 || i >= n {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
	}
	return i
}

// filterSep applies the separable 5-tap kernel horizontally then
// vertically with reflected boundaries.
func filterSep(plane []float64, w, h int) []float64 {
	tmp := make([]float64, len(plane))
	for y := 0; y < h; y++ {
		row := plane[y*w : (y+1)*w]
		trow := tmp[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			var s float64
			for k := -2; k <= 2; k++ {
				s += kernel1D[k+2] * row[reflect(x+k, w)]
			}
			trow[x] = s
		}
	}
	out := make([]float64, len(plane))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for k := -2; k <= 2; k++ {
				s += kernel1D[k+2] * tmp[reflect(y+k, h)*w+x]
			}
			out[y*w+x] = s
		}
	}
	return out
}

// reduce low-pass filters and decimates by 2 (even samples kept), the
// output sized ceil(w/2) × ceil(h/2).
func reduce(plane []float64, w, h int) []float64 {
	filt := filterSep(plane, w, h)
	w2, h2 := (w+1)/2, (h+1)/2
	out := make([]float64, w2*h2)
	for y := 0; y < h2; y++ {
		for x := 0; x < w2; x++ {
			out[y*w2+x] = filt[(2*y)*w+2*x]
		}
	}
	return out
}

// expand upsamples a w2×h2 plane back to w×h: zeros interleaved at odd
// positions, then the 5-tap kernel applied with a gain of 4 to restore
// the energy the zeros removed.
func expand(plane []float64, w2, h2, w, h int) []float64 {
	ups := make([]float64, w*h)
	for y := 0; y < h2; y++ {
		for x := 0; x < w2; x++ {
			yy, xx := 2*y, 2*x
			if yy < h && xx < w {
				ups[yy*w+xx] = plane[y*w2+x]
			}
		}
	}
	out := filterSep(ups, w, h)
	for i := range out {
		out[i] *= 4
	}
	return out
}

// writeChannel min/max-stretches plane to [0, 255] and stores it in
// channel ch of the packed RGB buffer. A flat plane maps to 0.
func writeChannel(rgb []byte, plane []float64, ch int) {
	lo, hi := plane[0], plane[0]
	for _, v := range plane {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	for i, v := range plane {
		s := math.Round((v - lo) * scale)
		if s < 0 {
			s = 0
		} else if s > 255 {
			s = 255
		}
		rgb[i*3+ch] = byte(s)
	}
}
