// Package postproc implements the post-processing the paper sketches
// after fusion: edge detection on the color composite and structural
// target detection ("detect edges in the image and use structural
// information to detect and classify the vehicles", §3).
package postproc

import (
	"errors"
	"image"
	"math"
)

// ErrEmptyImage is returned for degenerate inputs.
var ErrEmptyImage = errors.New("postproc: empty image")

// Luminance converts an RGBA composite to a float64 luminance plane
// (Rec. 601 weights).
func Luminance(img *image.RGBA) ([]float64, int, int, error) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w == 0 || h == 0 {
		return nil, 0, 0, ErrEmptyImage
	}
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := img.RGBAAt(b.Min.X+x, b.Min.Y+y)
			out[y*w+x] = 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
		}
	}
	return out, w, h, nil
}

// Sobel computes gradient magnitude with the 3×3 Sobel operator,
// replicating edge pixels at the border.
func Sobel(plane []float64, w, h int) ([]float64, error) {
	if len(plane) != w*h || w == 0 || h == 0 {
		return nil, ErrEmptyImage
	}
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return plane[y*w+x]
	}
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := -at(x-1, y-1) + at(x+1, y-1) +
				-2*at(x-1, y) + 2*at(x+1, y) +
				-at(x-1, y+1) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			out[y*w+x] = math.Hypot(gx, gy)
		}
	}
	return out, nil
}

// EdgeMap thresholds a gradient plane at the given quantile (0..1),
// returning a binary mask.
func EdgeMap(grad []float64, w, h int, quantile float64) ([]bool, error) {
	if len(grad) != w*h || w == 0 || h == 0 {
		return nil, ErrEmptyImage
	}
	if quantile < 0 {
		quantile = 0
	}
	if quantile > 1 {
		quantile = 1
	}
	sorted := append([]float64(nil), grad...)
	insertionSort(sorted)
	idx := int(quantile * float64(len(sorted)-1))
	thresh := sorted[idx]
	out := make([]bool, len(grad))
	for i, g := range grad {
		out[i] = g > thresh
	}
	return out, nil
}

// insertionSort avoids importing sort for a hot-free path; planes are
// sorted once per detection pass.
func insertionSort(xs []float64) {
	// Shell sort: fine for the plane sizes involved and allocation-free.
	n := len(xs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			v := xs[i]
			j := i
			for ; j >= gap && xs[j-gap] > v; j -= gap {
				xs[j] = xs[j-gap]
			}
			xs[j] = v
		}
	}
}

// Blob is a connected component of an edge/interest mask.
type Blob struct {
	MinX, MinY, MaxX, MaxY int
	Pixels                 int
}

// Width returns the blob's bounding-box width.
func (b Blob) Width() int { return b.MaxX - b.MinX + 1 }

// Height returns the blob's bounding-box height.
func (b Blob) Height() int { return b.MaxY - b.MinY + 1 }

// CenterX returns the bounding-box centre x.
func (b Blob) CenterX() int { return (b.MinX + b.MaxX) / 2 }

// CenterY returns the bounding-box centre y.
func (b Blob) CenterY() int { return (b.MinY + b.MaxY) / 2 }

// Components labels 4-connected components of mask, ignoring those
// smaller than minPixels.
func Components(mask []bool, w, h, minPixels int) ([]Blob, error) {
	if len(mask) != w*h || w == 0 || h == 0 {
		return nil, ErrEmptyImage
	}
	seen := make([]bool, len(mask))
	var blobs []Blob
	var stack []int
	for start := range mask {
		if !mask[start] || seen[start] {
			continue
		}
		blob := Blob{MinX: w, MinY: h, MaxX: -1, MaxY: -1}
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%w, i/w
			blob.Pixels++
			if x < blob.MinX {
				blob.MinX = x
			}
			if x > blob.MaxX {
				blob.MaxX = x
			}
			if y < blob.MinY {
				blob.MinY = y
			}
			if y > blob.MaxY {
				blob.MaxY = y
			}
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if mask[j] && !seen[j] {
					seen[j] = true
					stack = append(stack, j)
				}
			}
		}
		if blob.Pixels >= minPixels {
			blobs = append(blobs, blob)
		}
	}
	return blobs, nil
}

// DetectVehicles runs the full §3 post-processing chain on a fused
// composite: luminance → Sobel → quantile edge map → connected
// components filtered to vehicle-scale boxes.
func DetectVehicles(img *image.RGBA, minSize, maxSize int) ([]Blob, error) {
	plane, w, h, err := Luminance(img)
	if err != nil {
		return nil, err
	}
	grad, err := Sobel(plane, w, h)
	if err != nil {
		return nil, err
	}
	mask, err := EdgeMap(grad, w, h, 0.92)
	if err != nil {
		return nil, err
	}
	blobs, err := Components(mask, w, h, minSize)
	if err != nil {
		return nil, err
	}
	var out []Blob
	for _, b := range blobs {
		if b.Width() <= maxSize && b.Height() <= maxSize {
			out = append(out, b)
		}
	}
	return out, nil
}
