package postproc

import (
	"image"
	"image/color"
	"testing"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
)

func flatImage(w, h int, c color.RGBA) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestLuminance(t *testing.T) {
	img := flatImage(4, 3, color.RGBA{R: 255, G: 255, B: 255, A: 255})
	plane, w, h, err := Luminance(img)
	if err != nil || w != 4 || h != 3 {
		t.Fatalf("%v %d %d", err, w, h)
	}
	for _, v := range plane {
		if v < 254.9 || v > 255.1 {
			t.Fatalf("white luminance = %g", v)
		}
	}
	if _, _, _, err := Luminance(image.NewRGBA(image.Rect(0, 0, 0, 0))); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestSobelFindsStep(t *testing.T) {
	// Vertical step edge at x=4.
	w, h := 8, 8
	plane := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 4; x < w; x++ {
			plane[y*w+x] = 100
		}
	}
	grad, err := Sobel(plane, w, h)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient peaks along the step, zero far away.
	if grad[3*w+4] == 0 || grad[3*w+3] == 0 {
		t.Fatal("no gradient at the step")
	}
	if grad[3*w+1] != 0 || grad[3*w+6] != 0 {
		t.Fatal("gradient in flat region")
	}
	if _, err := Sobel(plane, 3, 3); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestEdgeMapQuantile(t *testing.T) {
	grad := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	mask, err := EdgeMap(grad, 10, 1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, m := range mask {
		if m {
			count++
		}
	}
	if count != 2 { // 8 and 9 exceed the 0.8-quantile value 7
		t.Fatalf("mask count = %d", count)
	}
	// Clamped quantiles.
	if _, err := EdgeMap(grad, 10, 1, -3); err != nil {
		t.Fatal(err)
	}
	if _, err := EdgeMap(grad, 2, 1, 0.5); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestComponents(t *testing.T) {
	// Two blobs: a 2x2 square and a single pixel.
	w, h := 6, 4
	mask := make([]bool, w*h)
	mask[1*w+1], mask[1*w+2], mask[2*w+1], mask[2*w+2] = true, true, true, true
	mask[0*w+5] = true
	blobs, err := Components(mask, w, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("blobs = %d", len(blobs))
	}
	big := blobs[0]
	if blobs[1].Pixels > big.Pixels {
		big = blobs[1]
	}
	if big.Pixels != 4 || big.Width() != 2 || big.Height() != 2 {
		t.Fatalf("big blob %+v", big)
	}
	if big.CenterX() != 1 || big.CenterY() != 1 {
		t.Fatalf("center %d,%d", big.CenterX(), big.CenterY())
	}
	// minPixels filter.
	blobs, err = Components(mask, w, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("filtered blobs = %d", len(blobs))
	}
}

func TestDetectVehiclesOnFusedScene(t *testing.T) {
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 64, Height: 64, Bands: 32, Seed: 21,
		NoiseSigma: 3, Illumination: 0.08,
		OpenVehicles: 1, CamouflagedVehicles: 0,
		SpectralVariability: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Sequential(scene.Cube, core.Options{Workers: 2, Threshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := DetectVehicles(res.Image, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatal("no structures detected in fused composite")
	}
	// At least one detection overlaps a true vehicle pixel.
	found := false
	for _, b := range blobs {
		for y := b.MinY; y <= b.MaxY && !found; y++ {
			for x := b.MinX; x <= b.MaxX && !found; x++ {
				if scene.TruthAt(x, y) == hsi.MaterialVehicle {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no detection overlaps the vehicle")
	}
	_ = colormap.OpponentMatrix // the chain consumes colormap output
}
