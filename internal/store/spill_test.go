package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openSpill(t *testing.T, dir string, maxBytes int64) (*Spill, SpillReport) {
	t.Helper()
	s, rep, err := OpenSpill(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s, rep
}

func TestSpillPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSpill(t, dir, 0)
	payload := []byte("the fused composite bytes")
	if err := s.Put("digest|opts", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("digest|opts")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}
	if _, ok, _ := s.Get("other"); ok {
		t.Fatal("miss reported a hit")
	}

	// A fresh open (a restart) must re-index the entry from disk.
	s2, rep := openSpill(t, dir, 0)
	if rep.Entries != 1 || rep.Corrupt != 0 {
		t.Fatalf("reopen report %+v", rep)
	}
	got, ok, err = s2.Get("digest|opts")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-reopen Get = %q ok=%v err=%v", got, ok, err)
	}
}

// TestSpillDigestValidation corrupts a spilled file on disk: both the
// boot-time scan and a read must reject it rather than serve bad bytes.
func TestSpillDigestValidation(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSpill(t, dir, 0)
	if err := s.Put("k", []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("spill dir: %v %d", err, len(des))
	}
	path := filepath.Join(dir, des[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Read path: digest mismatch → entry dropped, file removed.
	if _, ok, err := s.Get("k"); ok || err == nil {
		t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt spill file not removed on read")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("index not cleaned: len=%d bytes=%d", s.Len(), s.Bytes())
	}

	// Boot path: a corrupt resident file is swept during the scan.
	if err := s.Put("k2", []byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	des, _ = os.ReadDir(dir)
	path2 := filepath.Join(dir, des[0].Name())
	data, _ = os.ReadFile(path2)
	data[0] ^= 0xff
	os.WriteFile(path2, data, 0o644)
	_, rep := openSpill(t, dir, 0)
	if rep.Entries != 0 || rep.Corrupt != 1 {
		t.Fatalf("boot scan report %+v", rep)
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatal("corrupt spill file not removed by boot scan")
	}
}

func TestSpillByteBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~ len(magic)+4+key+payload ≈ 10 + small; budget for
	// roughly two of the three.
	payload := bytes.Repeat([]byte("x"), 100)
	one, _ := encodeSpill("k1", payload)
	budget := int64(len(one))*2 + 10
	s, _ := openSpill(t, dir, budget)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("resident entries = %d, want 2", s.Len())
	}
	if _, ok, _ := s.Get("k1"); ok {
		t.Fatal("oldest entry k1 should have been evicted")
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Fatalf("entry %s lost: ok=%v err=%v", k, ok, err)
		}
	}
	if s.Bytes() > budget {
		t.Fatalf("resident bytes %d exceed budget %d", s.Bytes(), budget)
	}
	// An entry alone larger than the budget is refused without error.
	if err := s.Put("huge", bytes.Repeat([]byte("y"), int(budget))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("huge"); ok {
		t.Fatal("over-budget entry stored")
	}
}

// TestSpillBootLRUOrder seeds files with distinct mtimes and checks the
// boot index evicts oldest-first when the budget shrinks.
func TestSpillBootLRUOrder(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSpill(t, dir, 0)
	payload := bytes.Repeat([]byte("z"), 50)
	names := map[string]string{}
	for i, k := range []string{"old", "mid", "new"} {
		if err := s.Put(k, append(payload, byte(i))); err != nil {
			t.Fatal(err)
		}
		des, _ := os.ReadDir(dir)
		for _, de := range des {
			if _, seen := names[de.Name()]; !seen && strings.HasSuffix(de.Name(), spillExt) {
				names[de.Name()] = k
			}
		}
	}
	// Spread mtimes so the scan order is unambiguous.
	base := time.Now().Add(-time.Hour)
	order := []string{"old", "mid", "new"}
	for name, k := range names {
		var idx int
		for i, o := range order {
			if o == k {
				idx = i
			}
		}
		mt := base.Add(time.Duration(idx) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, name), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	one, _ := encodeSpill("old", append(payload, 0))
	budget := int64(len(one))*2 + 10
	s2, rep := openSpill(t, dir, budget)
	if rep.Entries != 2 {
		t.Fatalf("boot with shrunk budget kept %d entries (%+v)", rep.Entries, rep)
	}
	if _, ok, _ := s2.Get("old"); ok {
		t.Fatal("oldest entry survived the shrunk budget")
	}
	for _, k := range []string{"mid", "new"} {
		if _, ok, err := s2.Get(k); !ok || err != nil {
			t.Fatalf("entry %s lost on boot: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestSpillRemove(t *testing.T) {
	dir := t.TempDir()
	s, _ := openSpill(t, dir, 0)
	if err := s.Put("k", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Remove("k")
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("removed entry still served")
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasSuffix(de.Name(), spillExt) {
			t.Fatalf("spill file %s survived Remove", de.Name())
		}
	}
}
