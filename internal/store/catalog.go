package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Scene catalog record ops.
const (
	SceneAdd    = "add"
	SceneRemove = "remove"
)

// SceneRecord is one scene catalog entry as it travels in the log. Add
// records carry the full registration; Remove records carry only the ID.
type SceneRecord struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// Seq is the numeric suffix of the scene ID; the catalog's MaxSeq
	// keeps ID allocation monotonic across restarts.
	Seq uint64 `json:"seq,omitempty"`
	// Header is the marshaled ENVI header text.
	Header string `json:"header,omitempty"`
	// File is the data payload path: a bare name resolved against the
	// spool directory for pool-owned spools, or an absolute path for
	// externally owned registrations (External true).
	File     string `json:"file,omitempty"`
	External bool   `json:"external,omitempty"`
	Digest   string `json:"digest,omitempty"`
	// RegisteredUnixNano is the registration wall-clock stamp, supplied
	// by the caller (this package never reads the clock).
	RegisteredUnixNano int64 `json:"registered_unix_nano,omitempty"`
}

// CatalogReport summarizes a catalog replay.
type CatalogReport struct {
	ReplayReport
	// Scenes is how many live scenes survived the replay (adds minus
	// removes, duplicates collapsed).
	Scenes int
	// BadRecords counts records whose JSON payload did not decode or
	// that carried an unknown op; they are skipped, not fatal.
	BadRecords int
}

// Catalog is the persistent scene registry: an append-only log of
// add/remove records, replayed into a map on open. Replay is idempotent
// — duplicate adds overwrite, removes of unknown IDs are no-ops — so a
// log that carries retried records recovers to the same state.
type Catalog struct {
	mu     sync.Mutex
	log    *Log
	scenes map[string]SceneRecord
	maxSeq uint64
}

// OpenCatalog opens (creating if needed) the catalog log at path and
// replays it.
func OpenCatalog(path string) (*Catalog, CatalogReport, error) {
	c := &Catalog{scenes: make(map[string]SceneRecord)}
	var rep CatalogReport
	log, lrep, err := OpenLog(path, func(payload []byte) error {
		var rec SceneRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.BadRecords++
			return nil
		}
		c.apply(rec, &rep)
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	rep.ReplayReport = lrep
	rep.Scenes = len(c.scenes)
	c.log = log
	return c, rep, nil
}

func (c *Catalog) apply(rec SceneRecord, rep *CatalogReport) {
	switch rec.Op {
	case SceneAdd:
		if rec.ID == "" {
			rep.BadRecords++
			return
		}
		c.scenes[rec.ID] = rec
		if rec.Seq > c.maxSeq {
			c.maxSeq = rec.Seq
		}
	case SceneRemove:
		delete(c.scenes, rec.ID)
		if rec.Seq > c.maxSeq {
			c.maxSeq = rec.Seq
		}
	default:
		rep.BadRecords++
	}
}

// Add appends (and fsyncs) an add record and publishes it to the live
// view. The record is durable when Add returns.
func (c *Catalog) Add(rec SceneRecord) error {
	rec.Op = SceneAdd
	if rec.ID == "" {
		return fmt.Errorf("store: catalog add without scene ID")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := c.log.Append(payload); err != nil {
		return err
	}
	c.mu.Lock()
	c.scenes[rec.ID] = rec
	if rec.Seq > c.maxSeq {
		c.maxSeq = rec.Seq
	}
	c.mu.Unlock()
	return nil
}

// Remove appends (and fsyncs) a remove record. The caller unlinks the
// scene's spool files only after Remove returns — record-then-unlink —
// so a crash between the two leaves an orphan the boot sweep collects,
// never a half-deleted scene that resurrects.
func (c *Catalog) Remove(id string) error {
	payload, err := json.Marshal(SceneRecord{Op: SceneRemove, ID: id})
	if err != nil {
		return err
	}
	if err := c.log.Append(payload); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.scenes, id)
	c.mu.Unlock()
	return nil
}

// Scenes returns the live records sorted by Seq (registration order).
func (c *Catalog) Scenes() []SceneRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SceneRecord, len(c.scenes))
	i := 0
	for _, rec := range c.scenes {
		out[i] = rec
		i++
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// MaxSeq returns the highest scene sequence number the log has seen,
// including removed scenes — ID allocation must never reuse a number.
func (c *Catalog) MaxSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxSeq
}

// Drop removes id from the live view without writing a record — for
// recovery-time invalidation of scenes whose spool files are missing or
// corrupt (the next Compact drops them from the log too).
func (c *Catalog) Drop(id string) {
	c.mu.Lock()
	delete(c.scenes, id)
	c.mu.Unlock()
}

// Compact rewrites the log to just the live add records (plus one
// synthetic remove record pinning MaxSeq when the live set does not
// already reach it), bounding log growth across restarts.
func (c *Catalog) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := make([]SceneRecord, len(c.scenes))
	i := 0
	seqCovered := uint64(0)
	for _, rec := range c.scenes {
		live[i] = rec
		i++
		if rec.Seq > seqCovered {
			seqCovered = rec.Seq
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	if seqCovered < c.maxSeq {
		live = append(live, SceneRecord{Op: SceneRemove, ID: fmt.Sprintf("scene-%d", c.maxSeq), Seq: c.maxSeq})
	}
	payloads := make([][]byte, len(live))
	for i, rec := range live {
		p, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		payloads[i] = p
	}
	return c.log.Rewrite(payloads)
}

// Close releases the underlying log.
func (c *Catalog) Close() error { return c.log.Close() }
