package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// spillMagic opens every spill file; a file that does not start with it
// is not ours to trust (or delete content from — it is just skipped and
// removed as corrupt, since the spill directory is store-owned).
var spillMagic = []byte("FSPL1\n")

// spillExt is the spill file extension; the stem is the hex SHA-256 of
// the file's entire contents.
const spillExt = ".spill"

// maxSpillKeyLen bounds the embedded cache key so a corrupted length
// field cannot demand an absurd allocation.
const maxSpillKeyLen = 1 << 16

// ErrSpillCorrupt reports a spill file whose digest or framing did not
// validate; the entry is dropped and the file removed.
var ErrSpillCorrupt = errors.New("store: spill entry corrupt")

// SpillReport summarizes a spill directory scan.
type SpillReport struct {
	// Entries and Bytes are the valid entries indexed.
	Entries int
	Bytes   int64
	// Corrupt counts files whose digest or framing failed validation;
	// they are deleted during the scan.
	Corrupt int
}

// Spill is a content-addressed store of evicted cache entries: each
// entry is one file whose name is the hex SHA-256 of its contents
// (magic, key frame, payload), so every reload — boot-time scan or
// cache-miss read — re-derives the digest and validates it against the
// name before a byte of payload is trusted. Total bytes are bounded by
// maxBytes with least-recently-used files evicted first (boot order is
// by file modification time).
type Spill struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element // key → *spillEntry
	ll      *list.List               // front = most recently used
	bytes   int64
}

type spillEntry struct {
	key  string
	file string // bare name under dir
	size int64  // full file size
}

// OpenSpill opens (creating if needed) the spill directory, validates
// every resident file against its content digest, and indexes the
// survivors. maxBytes <= 0 disables the byte bound (not recommended —
// the point of the spill is bounded disk, but tests use it).
func OpenSpill(dir string, maxBytes int64) (*Spill, SpillReport, error) {
	var rep SpillReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, err
	}
	s := &Spill{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		ll:       list.New(),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, rep, err
	}
	// Oldest first, so the LRU list ends up most-recent at the front.
	type cand struct {
		name string
		mod  int64
	}
	cands := make([]cand, 0, len(des))
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), spillExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{name: de.Name(), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].mod != cands[b].mod {
			return cands[a].mod < cands[b].mod
		}
		return cands[a].name < cands[b].name
	})
	for _, c := range cands {
		path := filepath.Join(dir, c.name)
		key, _, err := readSpillFile(path, c.name)
		if err != nil {
			rep.Corrupt++
			os.Remove(path)
			continue
		}
		info, err := os.Stat(path)
		if err != nil {
			continue
		}
		if old, ok := s.entries[key]; ok {
			// Two files for one key (crash between write and the old
			// file's removal): keep the newer, drop the older.
			oldEnt := old.Value.(*spillEntry)
			os.Remove(filepath.Join(dir, oldEnt.file))
			s.bytes -= oldEnt.size
			s.ll.Remove(old)
			delete(s.entries, key)
		}
		ent := &spillEntry{key: key, file: c.name, size: info.Size()}
		s.entries[key] = s.ll.PushFront(ent)
		s.bytes += ent.size
	}
	s.evictOverBudgetLocked()
	rep.Entries = s.ll.Len()
	rep.Bytes = s.bytes
	return s, rep, nil
}

// encodeSpill frames key+payload and returns (contents, filename).
func encodeSpill(key string, payload []byte) ([]byte, string) {
	buf := make([]byte, 0, len(spillMagic)+4+len(key)+len(payload))
	buf = append(buf, spillMagic...)
	var kl [4]byte
	binary.LittleEndian.PutUint32(kl[:], uint32(len(key)))
	buf = append(buf, kl[:]...)
	buf = append(buf, key...)
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return buf, hex.EncodeToString(sum[:]) + spillExt
}

// readSpillFile loads and validates one spill file: the whole-file
// SHA-256 must match the name's stem, and the key frame must parse.
func readSpillFile(path, name string) (key string, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:])+spillExt != name {
		return "", nil, fmt.Errorf("%w: %s digest mismatch", ErrSpillCorrupt, name)
	}
	if len(data) < len(spillMagic)+4 || !bytes.HasPrefix(data, spillMagic) {
		return "", nil, fmt.Errorf("%w: %s bad frame", ErrSpillCorrupt, name)
	}
	body := data[len(spillMagic):]
	kl := int(binary.LittleEndian.Uint32(body[:4]))
	if kl > maxSpillKeyLen || 4+kl > len(body) {
		return "", nil, fmt.Errorf("%w: %s bad key frame", ErrSpillCorrupt, name)
	}
	return string(body[4 : 4+kl]), body[4+kl:], nil
}

// Put spills one entry: the framed bytes are written to a temporary
// file, fsync'd, and renamed to their content digest. An entry for the
// same key is replaced; entries larger than the byte budget are refused
// (not an error — the caller just loses the spill, as a RAM-only LRU
// would have).
func (s *Spill) Put(key string, payload []byte) error {
	if len(key) > maxSpillKeyLen {
		return fmt.Errorf("store: spill key over %d bytes", maxSpillKeyLen)
	}
	buf, name := encodeSpill(key, payload)
	if s.maxBytes > 0 && int64(len(buf)) > s.maxBytes {
		return nil
	}
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	_ = syncDir(s.dir)

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		oldEnt := old.Value.(*spillEntry)
		if oldEnt.file != name {
			os.Remove(filepath.Join(s.dir, oldEnt.file))
		}
		s.bytes -= oldEnt.size
		s.ll.Remove(old)
		delete(s.entries, key)
	}
	ent := &spillEntry{key: key, file: name, size: int64(len(buf))}
	s.entries[key] = s.ll.PushFront(ent)
	s.bytes += ent.size
	s.evictOverBudgetLocked()
	return nil
}

// Get loads the payload spilled for key, re-validating the file's
// content digest. ok is false on a plain miss; a corrupt or unreadable
// file drops the entry and reports the error alongside ok == false.
func (s *Spill) Get(key string) (payload []byte, ok bool, err error) {
	s.mu.Lock()
	el, found := s.entries[key]
	var ent *spillEntry
	if found {
		ent = el.Value.(*spillEntry)
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !found {
		return nil, false, nil
	}
	gotKey, payload, err := readSpillFile(filepath.Join(s.dir, ent.file), ent.file)
	if err == nil && gotKey != key {
		err = fmt.Errorf("%w: %s key mismatch", ErrSpillCorrupt, ent.file)
	}
	if err != nil {
		s.removeEntry(key, ent.file)
		return nil, false, err
	}
	return payload, true, nil
}

// Remove drops the entry for key (if any) and deletes its file.
func (s *Spill) Remove(key string) {
	s.mu.Lock()
	el, ok := s.entries[key]
	var file string
	if ok {
		ent := el.Value.(*spillEntry)
		file = ent.file
		s.bytes -= ent.size
		s.ll.Remove(el)
		delete(s.entries, key)
	}
	s.mu.Unlock()
	if ok {
		os.Remove(filepath.Join(s.dir, file))
	}
}

func (s *Spill) removeEntry(key, file string) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok && el.Value.(*spillEntry).file == file {
		s.bytes -= el.Value.(*spillEntry).size
		s.ll.Remove(el)
		delete(s.entries, key)
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, file))
}

// evictOverBudgetLocked drops least-recently-used entries until the
// byte budget holds. Caller holds s.mu.
func (s *Spill) evictOverBudgetLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.ll.Len() > 0 {
		oldest := s.ll.Back()
		ent := oldest.Value.(*spillEntry)
		s.ll.Remove(oldest)
		delete(s.entries, ent.key)
		s.bytes -= ent.size
		os.Remove(filepath.Join(s.dir, ent.file))
	}
}

// Bytes returns the resident spilled byte total.
func (s *Spill) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Len returns the resident entry count.
func (s *Spill) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
