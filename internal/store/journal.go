package store

import (
	"encoding/json"
	"sort"
	"sync"
)

// Job journal record ops: the submit/start/finish/fail/cancel lifecycle
// transitions the service writes ahead of acting on them.
const (
	JobSubmit = "submit"
	JobStart  = "start"
	JobFinish = "finish"
	JobFail   = "fail"
	JobCancel = "cancel"
)

// Job kinds (submit records only).
const (
	JobKindCube  = "cube"
	JobKindScene = "scene"
)

// JobRecord is one job lifecycle transition as it travels in the log.
// Submit records carry everything needed to re-run the job after a
// restart; the other ops carry just the identity (and, for failures, the
// error text).
type JobRecord struct {
	Op  string `json:"op"`
	Num uint64 `json:"num"`
	ID  string `json:"id,omitempty"`
	// Submit-only fields.
	Kind    string `json:"kind,omitempty"`
	SceneID string `json:"scene_id,omitempty"`
	Digest  string `json:"digest,omitempty"`
	// CubeFile names the spooled HSIC input (a bare name resolved
	// against the journal's cubes directory) for cube jobs.
	CubeFile string `json:"cube_file,omitempty"`
	// Options is the canonical options document the job was admitted
	// with (the service's JobOptions wire form). Replaying with the
	// recorded canonical options keeps result keys — and therefore
	// mosaics — bit-identical across the restart.
	Options json.RawMessage `json:"options,omitempty"`
	// Error is the failure text (fail records).
	Error string `json:"error,omitempty"`
}

// JournalReport summarizes a journal replay.
type JournalReport struct {
	ReplayReport
	// Pending is how many jobs had a submit record but no terminal
	// record — the jobs recovery re-enqueues.
	Pending int
	// Started is how many of those had additionally reached start (they
	// were running when the process died).
	Started int
	// BadRecords counts undecodable or unknown-op records (skipped).
	BadRecords int
}

// Journal is the write-ahead job journal: an append-only log of
// lifecycle records, replayed on open into the set of jobs that still
// owe a run. Replay is idempotent and order-tolerant: duplicate records
// collapse, and a terminal record whose submit never made it to disk
// (or arrives later in a log assembled from retries) leaves no pending
// job behind.
type Journal struct {
	mu      sync.Mutex
	log     *Log
	pending map[uint64]*pendingJob
	// terminal remembers nums that saw finish/fail/cancel, so a
	// duplicate or late submit record cannot resurrect a finished job.
	terminal map[uint64]bool
	maxNum   uint64
}

type pendingJob struct {
	rec     JobRecord
	started bool
}

// PendingJob is one job recovery must re-enqueue: the submit record,
// plus whether the job had already started when the journal ended.
type PendingJob struct {
	Rec     JobRecord
	Started bool
}

// OpenJournal opens (creating if needed) the journal log at path and
// replays it.
func OpenJournal(path string) (*Journal, JournalReport, error) {
	j := &Journal{
		pending:  make(map[uint64]*pendingJob),
		terminal: make(map[uint64]bool),
	}
	var rep JournalReport
	log, lrep, err := OpenLog(path, func(payload []byte) error {
		var rec JobRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.BadRecords++
			return nil
		}
		j.apply(rec, &rep)
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	rep.ReplayReport = lrep
	for _, p := range j.pending {
		rep.Pending++
		if p.started {
			rep.Started++
		}
	}
	j.log = log
	return j, rep, nil
}

func (j *Journal) apply(rec JobRecord, rep *JournalReport) {
	if rec.Num > j.maxNum {
		j.maxNum = rec.Num
	}
	switch rec.Op {
	case JobSubmit:
		if j.terminal[rec.Num] {
			return // late or duplicate submit for a finished job
		}
		if p, ok := j.pending[rec.Num]; ok {
			p.rec = rec // duplicate submit: last record wins, started sticks
			return
		}
		j.pending[rec.Num] = &pendingJob{rec: rec}
	case JobStart:
		if p, ok := j.pending[rec.Num]; ok {
			p.started = true
		}
	case JobFinish, JobFail, JobCancel:
		delete(j.pending, rec.Num)
		j.terminal[rec.Num] = true
	default:
		if rep != nil {
			rep.BadRecords++
		}
	}
}

// Append writes (and fsyncs) one lifecycle record; it is durable when
// Append returns — the fsync-before-ack the admission path relies on.
// The live pending view tracks the record so a Compact reflects it.
func (j *Journal) Append(rec JobRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := j.log.Append(payload); err != nil {
		return err
	}
	j.mu.Lock()
	j.apply(rec, nil)
	j.mu.Unlock()
	return nil
}

// Pending returns the jobs that owe a run, sorted by Num — submission
// order, which is the order recovery re-enqueues them in.
func (j *Journal) Pending() []PendingJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]PendingJob, len(j.pending))
	i := 0
	for _, p := range j.pending {
		out[i] = PendingJob{Rec: p.rec, Started: p.started}
		i++
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Rec.Num < out[b].Rec.Num })
	return out
}

// Drop removes num from the pending view without writing a record — for
// recovery-time invalidation (e.g. a cube job whose spooled input is
// gone, already journaled as failed through the normal path).
func (j *Journal) Drop(num uint64) {
	j.mu.Lock()
	delete(j.pending, num)
	j.mu.Unlock()
}

// MaxNum returns the highest job number the log has seen — terminal
// jobs included — so job IDs stay unique across restarts.
func (j *Journal) MaxNum() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxNum
}

// Compact rewrites the log to just the pending submit (and start)
// records, plus a synthetic canceled marker pinning MaxNum when needed,
// bounding journal growth across restarts.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	nums := make([]uint64, len(j.pending))
	i := 0
	covered := uint64(0)
	for num := range j.pending {
		nums[i] = num
		i++
		if num > covered {
			covered = num
		}
	}
	sort.Slice(nums, func(a, b int) bool { return nums[a] < nums[b] })
	var payloads [][]byte
	for _, num := range nums {
		p := j.pending[num]
		sub, err := json.Marshal(p.rec)
		if err != nil {
			return err
		}
		payloads = append(payloads, sub)
		if p.started {
			st, err := json.Marshal(JobRecord{Op: JobStart, Num: num})
			if err != nil {
				return err
			}
			payloads = append(payloads, st)
		}
	}
	if covered < j.maxNum {
		marker, err := json.Marshal(JobRecord{Op: JobCancel, Num: j.maxNum})
		if err != nil {
			return err
		}
		payloads = append(payloads, marker)
	}
	if err := j.log.Rewrite(payloads); err != nil {
		return err
	}
	// The rewrite dropped historic terminal records; the marker (or the
	// pending set) still pins maxNum, and terminal state for compacted
	// jobs is irrelevant — their nums are never reissued.
	j.terminal = map[uint64]bool{j.maxNum: j.terminal[j.maxNum]}
	return nil
}

// Close releases the underlying log.
func (j *Journal) Close() error { return j.log.Close() }
