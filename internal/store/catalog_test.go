package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openCat(t *testing.T, path string) (*Catalog, CatalogReport) {
	t.Helper()
	c, rep, err := OpenCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, rep
}

func TestCatalogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.log")
	c, _ := openCat(t, path)
	for i := uint64(1); i <= 3; i++ {
		if err := c.Add(SceneRecord{
			ID: "scene-" + string(rune('0'+i)), Seq: i,
			Header: "ENVI", File: "scene.raw", Digest: "d",
			RegisteredUnixNano: int64(i) * 1000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Remove("scene-2"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, rep := openCat(t, path)
	if rep.Scenes != 2 || rep.BadRecords != 0 {
		t.Fatalf("replay report %+v", rep)
	}
	scenes := c2.Scenes()
	if len(scenes) != 2 || scenes[0].ID != "scene-1" || scenes[1].ID != "scene-3" {
		t.Fatalf("scenes after replay: %+v", scenes)
	}
	if scenes[0].RegisteredUnixNano != 1000 {
		t.Fatalf("registration stamp lost: %+v", scenes[0])
	}
	if c2.MaxSeq() != 3 {
		t.Fatalf("MaxSeq = %d, want 3", c2.MaxSeq())
	}
}

// TestCatalogDuplicateReplay doubles every record in the log: replay
// must collapse to the same state (idempotent replay invariant).
func TestCatalogDuplicateReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.log")
	c, _ := openCat(t, path)
	if err := c.Add(SceneRecord{ID: "scene-1", Seq: 1, File: "a.raw"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(SceneRecord{ID: "scene-2", Seq: 2, File: "b.raw"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("scene-1"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte(nil), data...), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, rep := openCat(t, path)
	if rep.Scenes != 1 {
		t.Fatalf("duplicated log replay report %+v", rep)
	}
	scenes := c2.Scenes()
	if len(scenes) != 1 || scenes[0].ID != "scene-2" {
		t.Fatalf("scenes after duplicated replay: %+v", scenes)
	}
}

// TestCatalogTornTailAndJunk: a torn final record and an undecodable
// JSON record are both tolerated with a clean report.
func TestCatalogTornTailAndJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.log")
	add, err := json.Marshal(SceneRecord{Op: SceneAdd, ID: "scene-1", Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw := AppendRecord(nil, add)
	raw = AppendRecord(raw, []byte("{not json"))        // intact frame, bad payload
	raw = append(raw, AppendRecord(nil, add)[:5]...)    // torn tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c, rep := openCat(t, path)
	if rep.Scenes != 1 || rep.BadRecords != 1 || rep.TruncatedBytes != 5 {
		t.Fatalf("report %+v", rep)
	}
	if got := c.Scenes(); len(got) != 1 || got[0].ID != "scene-1" {
		t.Fatalf("scenes %+v", got)
	}
}

func TestCatalogCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.log")
	c, _ := openCat(t, path)
	for i := uint64(1); i <= 5; i++ {
		if err := c.Add(SceneRecord{ID: "scene-" + string(rune('0'+i)), Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"scene-2", "scene-4", "scene-5"} {
		if err := c.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	c.Close()
	c2, rep := openCat(t, path)
	if rep.Scenes != 2 {
		t.Fatalf("post-compaction replay %+v", rep)
	}
	// Seq 5 was removed; compaction must still pin MaxSeq so scene IDs
	// are never reused.
	if c2.MaxSeq() != 5 {
		t.Fatalf("MaxSeq after compaction = %d, want 5", c2.MaxSeq())
	}
}
