package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, path string) ([][]byte, ReplayReport) {
	t.Helper()
	var got [][]byte
	log, rep, err := OpenLog(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return got, rep
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	log, rep, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh log replay = %+v", rep)
	}
	want := [][]byte{[]byte("one"), {}, []byte("three\x00with\xffbinary")}
	for _, p := range want {
		if err := log.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	got, rep := collect(t, path)
	if rep.Records != len(want) || rep.TruncatedBytes != 0 {
		t.Fatalf("replay = %+v", rep)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLogTornTail crashes mid-append at every prefix length of the
// final record and checks recovery keeps the intact prefix, truncates
// the torn bytes, and appends cleanly afterwards.
func TestLogTornTail(t *testing.T) {
	intact := AppendRecord(AppendRecord(nil, []byte("alpha")), []byte("beta"))
	torn := AppendRecord(nil, []byte("gamma-torn-record"))
	for cut := 1; cut < len(torn); cut++ {
		path := filepath.Join(t.TempDir(), "x.log")
		if err := os.WriteFile(path, append(append([]byte(nil), intact...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		got, rep := collect(t, path)
		if rep.Records != 2 || len(got) != 2 {
			t.Fatalf("cut=%d: records=%d report=%+v", cut, len(got), rep)
		}
		if rep.TruncatedBytes != int64(cut) {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, rep.TruncatedBytes, cut)
		}
		// The torn tail must be gone from disk: append and re-replay.
		log, _, err := OpenLog(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append([]byte("delta")); err != nil {
			t.Fatal(err)
		}
		log.Close()
		got, rep = collect(t, path)
		if rep.Records != 3 || rep.TruncatedBytes != 0 || !bytes.Equal(got[2], []byte("delta")) {
			t.Fatalf("cut=%d: post-recovery replay records=%d report=%+v", cut, len(got), rep)
		}
	}
}

// TestLogCorruptChecksum flips payload bytes of the final record and of
// a middle record: replay stops at the first untrusted frame and
// truncates from there, keeping every intact record before it.
func TestLogCorruptChecksum(t *testing.T) {
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var raw []byte
	offsets := make([]int, len(recs))
	for i, r := range recs {
		offsets[i] = len(raw)
		raw = AppendRecord(raw, r)
	}
	for i, keep := range []int{2, 1} { // corrupt last, then middle
		corruptAt := offsets[keep] + recordHeaderLen // first payload byte
		data := append([]byte(nil), raw...)
		data[corruptAt] ^= 0xff
		path := filepath.Join(t.TempDir(), "x.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, rep := collect(t, path)
		if rep.Records != keep || len(got) != keep {
			t.Fatalf("case %d: kept %d records (report %+v), want %d", i, len(got), rep, keep)
		}
		if rep.TruncatedBytes != int64(len(raw)-offsets[keep]) {
			t.Fatalf("case %d: truncated %d, want %d", i, rep.TruncatedBytes, len(raw)-offsets[keep])
		}
	}
}

// TestDecodeRecordsBogusLength exercises length fields past the buffer
// and past MaxRecordLen: both stop decoding without panicking or
// allocating the claimed size.
func TestDecodeRecordsBogusLength(t *testing.T) {
	var frame [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(MaxRecordLen+1))
	consumed, n, err := DecodeRecords(frame[:], nil)
	if err != nil || consumed != 0 || n != 0 {
		t.Fatalf("oversized length: consumed=%d n=%d err=%v", consumed, n, err)
	}
	binary.LittleEndian.PutUint32(frame[0:4], 1<<30)
	consumed, n, err = DecodeRecords(frame[:], nil)
	if err != nil || consumed != 0 || n != 0 {
		t.Fatalf("overlong length: consumed=%d n=%d err=%v", consumed, n, err)
	}
}

func TestLogRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	log, _, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"a", "b", "c"} {
		if err := log.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Rewrite([][]byte{[]byte("only")}); err != nil {
		t.Fatal(err)
	}
	// Appends continue on the rewritten file.
	if err := log.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	log.Close()
	got, rep := collect(t, path)
	if rep.Records != 2 || string(got[0]) != "only" || string(got[1]) != "tail" {
		t.Fatalf("rewritten log replay = %q, report %+v", got, rep)
	}
}

// FuzzDecodeRecords is the crash-safety fuzz target for the record
// decoder: arbitrary bytes must never panic, must never consume more
// bytes than exist, and whatever prefix is consumed must re-decode to
// the identical record sequence (decode is deterministic and
// truncation-stable).
func FuzzDecodeRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("seed")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a")), []byte("b"))[:11])
	var bogus [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(bogus[0:4], 0xffffffff)
	f.Add(bogus[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		var first [][]byte
		consumed, n, err := DecodeRecords(data, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("callback-less decode errored: %v", err)
		}
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if n != len(first) {
			t.Fatalf("reported %d records, callback saw %d", n, len(first))
		}
		var second [][]byte
		consumed2, n2, _ := DecodeRecords(data[:consumed], func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if consumed2 != consumed || n2 != n {
			t.Fatalf("re-decode of consumed prefix: consumed %d/%d records %d/%d", consumed2, consumed, n2, n)
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d diverged on re-decode", i)
			}
		}
	})
}
