package store

import (
	"os"
	"path/filepath"
	"testing"
)

func openJournal(t *testing.T, path string) (*Journal, JournalReport) {
	t.Helper()
	j, rep, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func TestJournalLifecycleReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJournal(t, path)
	append1 := func(rec JobRecord) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// 1: finished. 2: queued. 3: running. 4: canceled. 5: failed.
	append1(JobRecord{Op: JobSubmit, Num: 1, ID: "job-1", Kind: JobKindCube, CubeFile: "job-1.hsic"})
	append1(JobRecord{Op: JobStart, Num: 1})
	append1(JobRecord{Op: JobFinish, Num: 1})
	append1(JobRecord{Op: JobSubmit, Num: 2, ID: "job-2", Kind: JobKindScene, SceneID: "scene-1"})
	append1(JobRecord{Op: JobSubmit, Num: 3, ID: "job-3", Kind: JobKindCube, CubeFile: "job-3.hsic"})
	append1(JobRecord{Op: JobStart, Num: 3})
	append1(JobRecord{Op: JobSubmit, Num: 4, ID: "job-4", Kind: JobKindCube})
	append1(JobRecord{Op: JobCancel, Num: 4})
	append1(JobRecord{Op: JobSubmit, Num: 5, ID: "job-5", Kind: JobKindCube})
	append1(JobRecord{Op: JobFail, Num: 5, Error: "boom"})
	j.Close()

	j2, rep := openJournal(t, path)
	if rep.Pending != 2 || rep.Started != 1 {
		t.Fatalf("replay report %+v", rep)
	}
	pend := j2.Pending()
	if len(pend) != 2 || pend[0].Rec.Num != 2 || pend[1].Rec.Num != 3 {
		t.Fatalf("pending %+v", pend)
	}
	if pend[0].Started || !pend[1].Started {
		t.Fatalf("started flags wrong: %+v", pend)
	}
	if pend[0].Rec.SceneID != "scene-1" || pend[1].Rec.CubeFile != "job-3.hsic" {
		t.Fatalf("submit payloads lost: %+v", pend)
	}
	if j2.MaxNum() != 5 {
		t.Fatalf("MaxNum = %d, want 5", j2.MaxNum())
	}
}

// TestJournalDuplicateAndOutOfOrderReplay: doubling the log and a
// terminal record whose submit appears later must both collapse cleanly
// (idempotent, order-tolerant replay).
func TestJournalDuplicateAndOutOfOrderReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJournal(t, path)
	for _, rec := range []JobRecord{
		{Op: JobFinish, Num: 7},                       // terminal before its submit
		{Op: JobSubmit, Num: 7, ID: "job-7"},          // late submit: must not resurrect
		{Op: JobSubmit, Num: 8, ID: "job-8"},          //
		{Op: JobSubmit, Num: 8, ID: "job-8"},          // duplicate submit
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte(nil), data...), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep := openJournal(t, path)
	if rep.Pending != 1 {
		t.Fatalf("replay report %+v", rep)
	}
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Rec.Num != 8 {
		t.Fatalf("pending %+v", pend)
	}
	if j2.MaxNum() != 8 {
		t.Fatalf("MaxNum = %d", j2.MaxNum())
	}
}

func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJournal(t, path)
	for n := uint64(1); n <= 20; n++ {
		if err := j.Append(JobRecord{Op: JobSubmit, Num: n, ID: "job-x"}); err != nil {
			t.Fatal(err)
		}
		if n != 9 { // leave 9 pending; 20 is the max and terminal
			if err := j.Append(JobRecord{Op: JobFinish, Num: n}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Append(JobRecord{Op: JobStart, Num: 9}); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Appends keep working post-compaction and replay sees both the
	// surviving pending job and the preserved MaxNum.
	if err := j.Append(JobRecord{Op: JobSubmit, Num: 21, ID: "job-21"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, rep := openJournal(t, path)
	if rep.Pending != 2 {
		t.Fatalf("post-compaction replay %+v, pending %+v", rep, j2.Pending())
	}
	pend := j2.Pending()
	if pend[0].Rec.Num != 9 || !pend[0].Started || pend[1].Rec.Num != 21 {
		t.Fatalf("pending after compaction: %+v", pend)
	}
	if j2.MaxNum() != 21 {
		t.Fatalf("MaxNum = %d, want 21", j2.MaxNum())
	}
}

func TestJournalDrop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, _ := openJournal(t, path)
	if err := j.Append(JobRecord{Op: JobSubmit, Num: 1, ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	j.Drop(1)
	if len(j.Pending()) != 0 {
		t.Fatal("Drop left the job pending")
	}
	if j.MaxNum() != 1 {
		t.Fatal("Drop must not roll back MaxNum")
	}
}
