// Package store is the durable control plane under the fusion service:
// crash-safe persistence for the scene catalog, a write-ahead job
// journal, and a content-addressed disk-spill store for evicted result
// cache entries. Everything is built on one primitive — an append-only
// log of length-prefixed, checksummed records that tolerates a torn
// final record (the normal shape of a crash mid-append) by truncating
// back to the last intact record boundary.
//
// The package deliberately knows nothing about jobs, scenes, or fusion
// results beyond their serialized record forms; policy (what to replay,
// when to sweep an orphan, what a spilled payload decodes to) lives in
// internal/service. It is covered by the detsource lint scope: no wall
// clock, no global randomness — timestamps are passed in by callers,
// and recovery is a pure function of the bytes on disk.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// recordHeaderLen is the fixed per-record framing: a little-endian
// uint32 payload length followed by a CRC-32C (Castagnoli) of the
// payload.
const recordHeaderLen = 8

// MaxRecordLen bounds one record's payload. Catalog and journal records
// are small JSON documents; the bound exists so a corrupted length field
// is rejected before it can demand an absurd allocation.
const MaxRecordLen = 16 << 20

// castagnoli is the CRC-32C table shared by every record read and write.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrRecordTooLarge reports an Append whose payload exceeds MaxRecordLen.
var ErrRecordTooLarge = errors.New("store: record exceeds MaxRecordLen")

// ReplayReport summarizes one log replay for the boot-time recovery log.
type ReplayReport struct {
	// Records is how many intact records were decoded and replayed.
	Records int
	// TruncatedBytes is how many trailing bytes were discarded as a torn
	// or corrupt tail (0 for a clean log).
	TruncatedBytes int64
}

// DecodeRecords walks data record by record, calling fn with each intact
// payload, and returns the number of bytes consumed by intact records
// plus how many records were decoded. Decoding stops — without error —
// at the first frame that cannot be trusted: a short header, a length
// past the remaining bytes or MaxRecordLen, or a checksum mismatch. The
// undecodable tail is the caller's to truncate; everything before it
// replayed. fn errors abort the walk and are returned as-is.
//
// This is the pure core of log recovery (and the fuzz target): it never
// touches the filesystem and never panics on adversarial input.
func DecodeRecords(data []byte, fn func(payload []byte) error) (consumed int64, records int, err error) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < recordHeaderLen {
			return off, records, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecordLen || recordHeaderLen+n > int64(len(rest)) {
			return off, records, nil
		}
		payload := rest[recordHeaderLen : recordHeaderLen+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, records, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, records, err
			}
		}
		off += recordHeaderLen + n
		records++
	}
}

// AppendRecord frames payload for a record log. Exposed for tests that
// hand-build logs; Log.Append is the production path.
func AppendRecord(dst []byte, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Log is an append-only record log on disk. Append is safe for
// concurrent use; every append is fsync'd before it returns, so a
// record handed to Append is durable by the time the caller can act on
// it (the fsync-before-ack invariant the journal relies on).
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenLog opens (creating if needed) the record log at path, replays
// every intact record through fn, truncates any torn tail, and returns
// the log positioned for appends. A decode callback error aborts the
// open.
func OpenLog(path string, fn func(payload []byte) error) (*Log, ReplayReport, error) {
	var rep ReplayReport
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, rep, err
	}
	consumed, records, err := DecodeRecords(data, fn)
	if err != nil {
		return nil, rep, fmt.Errorf("store: replaying %s: %w", path, err)
	}
	rep.Records = records
	rep.TruncatedBytes = int64(len(data)) - consumed
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, rep, err
	}
	if rep.TruncatedBytes > 0 {
		if err := f.Truncate(consumed); err != nil {
			f.Close()
			return nil, rep, err
		}
	}
	if _, err := f.Seek(consumed, io.SeekStart); err != nil {
		f.Close()
		return nil, rep, err
	}
	return &Log{f: f, path: path}, rep, nil
}

// Append frames payload, writes it, and fsyncs before returning.
func (l *Log) Append(payload []byte) error {
	if int64(len(payload)) > MaxRecordLen {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	buf := AppendRecord(make([]byte, 0, recordHeaderLen+len(payload)), payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("store: append to closed log %s", l.path)
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	return l.f.Sync()
}

// Rewrite atomically replaces the log's contents with the given record
// payloads (compaction): the records are framed into a temporary file,
// fsync'd, and renamed over the log. Appends issued concurrently with a
// Rewrite are serialized against it.
func (l *Log) Rewrite(payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf []byte
	for _, p := range payloads {
		if int64(len(p)) > MaxRecordLen {
			return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(p))
		}
		buf = AppendRecord(buf, p)
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return err
	}
	nf, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = nf
	return syncDir(filepath.Dir(l.path))
}

// Close releases the log's file handle. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash. Filesystems that refuse directory fsync (some
// network mounts) degrade silently — the data fsync still happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
