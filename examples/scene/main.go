// Scene example: the whole-scene streaming pipeline end to end. A
// synthetic HYDICE-like scene is written to disk as an ENVI BIL raster,
// uploaded to the fusion service through the multipart /v1/scenes
// endpoint (the payload spools to disk, never to memory), fused
// tile-by-tile over the pooled workers with per-tile progress, and the
// mosaic fetched back as PNG. The same cube is then submitted through
// the in-memory /v1/jobs path to show the two produce byte-identical
// composites — and that the second submission is a content-addressed
// cache hit, because a streamed scene digests identically to its
// in-memory cube.
//
//	go run ./examples/scene
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/service"
)

type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	SceneID  string `json:"scene_id"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
	Progress *struct {
		Total       int `json:"total"`
		Screened    int `json:"screened"`
		Transformed int `json:"transformed"`
	} `json:"progress"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scene-example: ")

	// A paper-shaped (if reduced) synthetic scene, written as ENVI BIL.
	spec := hsi.DefaultSceneSpec()
	spec.Width, spec.Height, spec.Bands = 96, 96, 64
	sc, err := hsi.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "scene-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rawPath := filepath.Join(dir, "hydice.raw")
	if err := scene.Write(rawPath, sc.Cube, scene.BIL); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(rawPath)
	log.Printf("wrote ENVI scene %s: %s as BIL, %.1f MiB raw", rawPath, sc.Cube, float64(st.Size())/(1<<20))

	pool, err := service.NewPool(service.Config{Workers: 4, MaxConcurrent: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()

	// Upload: multipart header + raw payload, streamed.
	hdrText, err := os.ReadFile(rawPath + ".hdr")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := os.Open(rawPath)
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	hw, _ := mw.CreateFormField("header")
	_, _ = hw.Write(hdrText)
	dw, _ := mw.CreateFormFile("data", "hydice.raw")
	if _, err := io.Copy(dw, raw); err != nil {
		log.Fatal(err)
	}
	mw.Close()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/scenes", &body)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := client.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var info service.SceneInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("register: HTTP %d", resp.StatusCode)
	}
	log.Printf("registered %s: %dx%dx%d %s, digest %.12s…", info.ID, info.Width, info.Height, info.Bands, info.Interleave, info.Digest)

	// Fuse the scene, watching per-tile progress.
	resp, err = client.Post(srv.URL+"/v1/scenes/"+info.ID+"/fuse?threshold=0.05&granularity=4", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	var job jobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for job.State != "done" && job.State != "failed" {
		time.Sleep(20 * time.Millisecond)
		r, err := client.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
		if job.Progress != nil {
			log.Printf("  %s: screened %d/%d, transformed %d/%d", job.State,
				job.Progress.Screened, job.Progress.Total, job.Progress.Transformed, job.Progress.Total)
		}
	}
	if job.State != "done" {
		log.Fatalf("scene fuse failed: %s", job.Error)
	}

	// Fetch the mosaic.
	r, err := client.Get(srv.URL + "/v1/scenes/" + info.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	scenePNG, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK {
		log.Fatalf("result: HTTP %d (%v)", r.StatusCode, err)
	}
	outPath := filepath.Join(dir, "mosaic.png")
	if err := os.WriteFile(outPath, scenePNG, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("fetched mosaic: %d bytes of PNG", len(scenePNG))

	// Submit the identical cube through the in-memory path: the scene
	// digest matches the cube digest, so this is a cache hit, and the
	// composites are byte-identical.
	var cubeBody bytes.Buffer
	if _, err := sc.Cube.WriteTo(&cubeBody); err != nil {
		log.Fatal(err)
	}
	resp, err = client.Post(srv.URL+"/v1/jobs?threshold=0.05&granularity=4", "application/octet-stream", &cubeBody)
	if err != nil {
		log.Fatal(err)
	}
	var memJob jobView
	if err := json.NewDecoder(resp.Body).Decode(&memJob); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for memJob.State != "done" && memJob.State != "failed" {
		time.Sleep(10 * time.Millisecond)
		r, err := client.Get(srv.URL + "/v1/jobs/" + memJob.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&memJob); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
	}
	memPNG, err := pool.ImagePNG(memJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("in-memory resubmission cache hit: %v\n", memJob.CacheHit)
	fmt.Printf("streamed mosaic == in-memory composite: %v (%d bytes)\n", bytes.Equal(scenePNG, memPNG), len(memPNG))
}
