// Scene example: the whole-scene streaming pipeline end to end, driven
// through the typed fusionclient SDK. A synthetic HYDICE-like scene is
// written to disk as an ENVI BIL raster, uploaded with a streaming
// multipart request (the payload spools to disk, never to memory), fused
// tile-by-tile over the pooled workers, and the mosaic fetched back as
// PNG — all with a single long-poll wait instead of a status-poll loop.
// The same cube is then submitted through the in-memory path to show the
// two produce byte-identical composites, and that the second submission
// is a content-addressed cache hit (a streamed scene digests identically
// to its in-memory cube).
//
//	go run ./examples/scene
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"resilientfusion/fusionclient"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scene-example: ")
	ctx := context.Background()

	// A paper-shaped (if reduced) synthetic scene, written as ENVI BIL.
	spec := hsi.DefaultSceneSpec()
	spec.Width, spec.Height, spec.Bands = 96, 96, 64
	sc, err := hsi.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "scene-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rawPath := filepath.Join(dir, "hydice.raw")
	if err := scene.Write(rawPath, sc.Cube, scene.BIL); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(rawPath)
	log.Printf("wrote ENVI scene %s: %s as BIL, %.1f MiB raw", rawPath, sc.Cube, float64(st.Size())/(1<<20))

	pool, err := service.NewPool(service.Config{Workers: 4, MaxConcurrent: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := fusionclient.New(srv.URL, fusionclient.WithHTTPClient(srv.Client()))

	// Upload: the SDK streams header + raw payload as multipart; the
	// service spools it without ever materializing the scene in memory.
	hdrText, err := os.ReadFile(rawPath + ".hdr")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := os.Open(rawPath)
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	info, err := client.RegisterScene(ctx, string(hdrText), raw)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("registered %s: %dx%dx%d %s, digest %.12s…",
		info.ID, info.Width, info.Height, info.Bands, info.Interleave, info.Digest)

	// Fuse the scene and long-poll straight to the terminal state.
	opts := &fusionclient.Options{
		Threshold:   fusionclient.Float(0.05),
		Granularity: fusionclient.Int(4),
	}
	job, err := client.FuseScene(ctx, info.ID, opts)
	if err != nil {
		log.Fatal(err)
	}
	job, err = client.Wait(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	if job.State != fusionclient.StateDone {
		log.Fatalf("scene fuse failed: %s", job.Error)
	}
	log.Printf("fused %s: %d/%d tiles streamed through the pool, K=%d",
		job.ID, job.Progress.Transformed, job.Progress.Total, job.Result.UniqueSetSize)

	// Fetch the mosaic through the content-negotiated result endpoint.
	scenePNG, err := client.ResultPNG(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	outPath := filepath.Join(dir, "mosaic.png")
	if err := os.WriteFile(outPath, scenePNG, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("fetched mosaic: %d bytes of PNG", len(scenePNG))

	// Submit the identical cube through the in-memory path: the scene
	// digest matches the cube digest, so this is a cache hit, and the
	// composites are byte-identical.
	memJob, err := client.SubmitCube(ctx, sc.Cube, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !memJob.Terminal() {
		if memJob, err = client.Wait(ctx, memJob.ID); err != nil {
			log.Fatal(err)
		}
	}
	memPNG, err := client.ResultPNG(ctx, memJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("in-memory resubmission cache hit: %v\n", memJob.CacheHit)
	fmt.Printf("streamed mosaic == in-memory composite: %v (%d bytes)\n", bytes.Equal(scenePNG, memPNG), len(memPNG))
}
