// Resilience: fusion on the simulated cluster while an information-warfare
// attack kills worker replicas mid-run. The resiliency layer detects the
// losses by heartbeat timeout, regenerates replicas at alternative nodes,
// reconfigures the communication structure, and the computation completes
// with the correct result.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"resilientfusion/internal/core"
	"resilientfusion/internal/failure"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/scplib"
)

func main() {
	log.SetFlags(0)

	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 96, Height: 96, Bands: 48, Seed: 7,
		NoiseSigma: 6, Illumination: 0.12,
		OpenVehicles: 1, CamouflagedVehicles: 1,
		SpectralVariability: 0.12,
	})
	if err != nil {
		log.Fatal(err)
	}

	const workers = 4
	opts := core.Options{
		Workers:         workers,
		Granularity:     2,
		Threshold:       0.03,
		Replication:     2, // every worker has a shadow replica
		Regenerate:      true,
		HeartbeatPeriod: 0.5,
		FailTimeout:     2,
		RequestTimeout:  120,
	}

	// Reference: a failure-free sequential run for result validation.
	want, err := core.Sequential(scene.Cube, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated 100BaseT cluster: node 0 = manager, nodes 1..4 = workers.
	x, nodes := scplib.NewCluster(workers+1, perfmodel.EffectiveWorkstationRate)
	sys := scplib.NewSimSystem(x, x.NewBus(0, 0), nodes, scplib.DefaultMsgCost())
	sys.LogTo = func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}

	job, err := core.NewJob(sys, scene.Cube, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The attack: three replicas die at t=2s, including BOTH replicas of
	// worker 2 — that group must be regenerated from scratch and its
	// sub-problems reissued.
	plan := failure.Plan{Events: []failure.Event{
		failure.KillReplica(2.0, 1, 0),
		failure.KillReplica(2.0, 2, 0),
		failure.KillReplica(2.0, 2, 1),
	}}
	fmt.Println("attack plan:")
	for _, e := range plan.Events {
		fmt.Printf("  %s\n", e)
	}
	if err := plan.Arm(x, job.Runtime(), nodes); err != nil {
		log.Fatal(err)
	}

	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	st := job.Runtime().Stats()
	fmt.Printf("\ncompleted in %.2f virtual seconds\n", res.Times.Total)
	fmt.Printf("failures detected:    %d\n", st.Detections)
	fmt.Printf("replicas regenerated: %d\n", st.Regenerations)
	fmt.Printf("view changes:         %d\n", st.ViewChanges)
	fmt.Printf("manager reissues:     %d, cache misses: %d\n", res.Reissues, res.CacheMisses)

	same := len(res.Image.Pix) == len(want.Image.Pix)
	if same {
		for i := range res.Image.Pix {
			if res.Image.Pix[i] != want.Image.Pix[i] {
				same = false
				break
			}
		}
	}
	fmt.Printf("result identical to failure-free sequential reference: %v\n", same)
	if !same {
		log.Fatal("resiliency failed to preserve the result")
	}
}
