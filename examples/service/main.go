// Service example: run the multi-job fusion service in-process, submit a
// burst of cubes over its HTTP API, and watch the pool multiplex them
// over one set of persistent workers — then resubmit a scene and see it
// answered from the content-addressed result cache.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/service"
)

type jobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
	Result   *struct {
		UniqueSetSize int       `json:"unique_set_size"`
		SubCubes      int       `json:"sub_cubes"`
		Eigenvalues   []float64 `json:"eigenvalues"`
	} `json:"result"`
}

func submit(client *http.Client, base string, cube *hsi.Cube) (jobView, error) {
	var body bytes.Buffer
	if _, err := cube.WriteTo(&body); err != nil {
		return jobView{}, err
	}
	resp, err := client.Post(base+"/v1/jobs?threshold=0.05", "application/octet-stream", &body)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return jobView{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return jv, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, jv.Error)
	}
	return jv, nil
}

func poll(client *http.Client, base, id string) (jobView, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobView{}, err
		}
		var jv jobView
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return jobView{}, err
		}
		if jv.State == "done" || jv.State == "failed" {
			return jv, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func main() {
	log.SetFlags(0)

	// 1. One long-lived pool: 4 workers shared by every job, up to 4
	//    jobs in flight, the rest queued (admission-controlled).
	pool, err := service.NewPool(service.Config{Workers: 4, MaxConcurrent: 4, QueueDepth: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := srv.Client()
	fmt.Printf("fusion service on %s: 4 pooled workers, 4 concurrent jobs\n\n", srv.URL)

	// 2. A burst of distinct scenes — new imagery from many sensors.
	const burst = 8
	ids := make([]string, burst)
	for i := 0; i < burst; i++ {
		scene, err := hsi.GenerateScene(hsi.SceneSpec{
			Width: 48, Height: 48, Bands: 16, Seed: int64(100 + i),
			NoiseSigma: 5, Illumination: 0.12,
			OpenVehicles: 1 + i%2, CamouflagedVehicles: i % 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		jv, err := submit(client, srv.URL, scene.Cube)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = jv.ID
	}
	fmt.Printf("submitted %d jobs\n", burst)
	for i, id := range ids {
		jv, err := poll(client, srv.URL, id)
		if err != nil {
			log.Fatal(err)
		}
		if jv.State != "done" {
			log.Fatalf("%s failed: %s", id, jv.Error)
		}
		fmt.Printf("  %-7s scene %d: K=%-4d over %d sub-cubes\n",
			jv.ID, 100+i, jv.Result.UniqueSetSize, jv.Result.SubCubes)
	}

	// 3. Re-image scene 100: identical cube + options → served from the
	//    content-addressed cache, no recomputation.
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 48, Height: 48, Bands: 16, Seed: 100,
		NoiseSigma: 5, Illumination: 0.12, OpenVehicles: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	jv, err := submit(client, srv.URL, scene.Cube)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresubmitted scene 100: state=%s cache_hit=%v\n", jv.State, jv.CacheHit)

	// 4. Service counters.
	resp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d submitted, %d completed, cache %d/%d hit/miss, %.1f jobs/s\n",
		stats.Submitted, stats.Completed, stats.CacheHits, stats.CacheMisses, stats.Throughput)
}
