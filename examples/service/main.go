// Service example: run the multi-job fusion service in-process and drive
// it through the typed fusionclient SDK over the v2 API — submit a burst
// of cubes, wait for each with a single server-side long-poll (no
// hand-rolled status polling), then resubmit a scene and see it answered
// from the content-addressed result cache.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"resilientfusion/fusionclient"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/service"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. One long-lived pool: 4 workers shared by every job, up to 4
	//    jobs in flight, the rest queued (admission-controlled).
	pool, err := service.NewPool(service.Config{Workers: 4, MaxConcurrent: 4, QueueDepth: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	srv := httptest.NewServer(pool.Handler())
	defer srv.Close()
	client := fusionclient.New(srv.URL, fusionclient.WithHTTPClient(srv.Client()))
	fmt.Printf("fusion service on %s: 4 pooled workers, 4 concurrent jobs\n\n", srv.URL)

	opts := &fusionclient.Options{Threshold: fusionclient.Float(0.05)}

	// 2. A burst of distinct scenes — new imagery from many sensors.
	const burst = 8
	ids := make([]string, burst)
	for i := 0; i < burst; i++ {
		scene, err := hsi.GenerateScene(hsi.SceneSpec{
			Width: 48, Height: 48, Bands: 16, Seed: int64(100 + i),
			NoiseSigma: 5, Illumination: 0.12,
			OpenVehicles: 1 + i%2, CamouflagedVehicles: i % 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		job, err := client.SubmitCube(ctx, scene.Cube, opts)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = job.ID
	}
	fmt.Printf("submitted %d jobs\n", burst)
	for i, id := range ids {
		// One long-poll per job: the server parks the request until the
		// job is terminal — no client-side polling loop.
		job, err := client.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if job.State != fusionclient.StateDone {
			log.Fatalf("%s failed: %s", id, job.Error)
		}
		fmt.Printf("  %-7s scene %d: K=%-4d over %d sub-cubes (ran with granularity %d)\n",
			job.ID, 100+i, job.Result.UniqueSetSize, job.Result.SubCubes, job.Options.Granularity)
	}

	// 3. Re-image scene 100: identical cube + options → served from the
	//    content-addressed cache, already terminal at submit time.
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 48, Height: 48, Bands: 16, Seed: 100,
		NoiseSigma: 5, Illumination: 0.12, OpenVehicles: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.SubmitCube(ctx, scene.Cube, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresubmitted scene 100: state=%s cache_hit=%v\n", job.State, job.CacheHit)

	// 4. The unified job listing and the service counters.
	done, err := client.Jobs(ctx, fusionclient.StateDone, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("last %d done jobs:", len(done))
	for _, j := range done {
		fmt.Printf(" %s", j.ID)
	}
	fmt.Println()
	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d submitted, %d completed, cache %d/%d hit/miss, %.1f jobs/s\n",
		stats.Submitted, stats.Completed, stats.CacheHits, stats.CacheMisses, stats.Throughput)
}
