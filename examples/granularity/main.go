// Granularity: the paper's Figure 5 experiment in miniature — how the
// number of sub-cubes per processor changes execution time through load
// balance and communication/computation overlap, and where making the
// decomposition too fine starts to hurt.
//
//	go run ./examples/granularity
package main

import (
	"fmt"
	"log"

	"resilientfusion/internal/core"
	"resilientfusion/internal/experiments"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/metrics"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/simnet"
)

func main() {
	log.SetFlags(0)
	scale := experiments.SmallScale()
	scene, err := hsi.GenerateScene(scale.Scene)
	if err != nil {
		log.Fatal(err)
	}
	const workers = 4

	table := &metrics.Table{
		Title:  "Granularity sweep (4 workers, simulated 100BaseT cluster)",
		XLabel: "sub-cubes",
		YUnit:  "s",
	}
	var times []float64
	for _, g := range []int{1, 2, 3, 4, 6, 8} {
		x, nodes := scplib.NewCluster(workers+1, scale.NodeRate)
		var network simnet.Network = x.NewBus(0, 0)
		sys := scplib.NewSimSystem(x, network, nodes, scale.MsgCost)
		res, err := core.Fuse(sys, scene.Cube, core.Options{
			Workers:        workers,
			Granularity:    g,
			Threshold:      scale.Threshold,
			RequestTimeout: 1e5,
		})
		if err != nil {
			log.Fatal(err)
		}
		table.X = append(table.X, float64(res.SubCubes))
		times = append(times, res.Times.Total)
		fmt.Printf("granularity x%d (%2d sub-cubes): %8.2f virtual s\n", g, res.SubCubes, res.Times.Total)
	}
	table.Add("time", times)
	fmt.Println()
	if err := table.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe paper's finding: a few sub-cubes per processor beats one" +
		"\n(balance + overlap), while very fine decompositions pay growing" +
		"\nper-message and merge overheads — performance tails off.")
}
