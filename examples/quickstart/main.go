// Quickstart: fuse a hyper-spectral cube into a color composite with the
// distributed spectral-screening PCT on the goroutine runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scplib"
)

func main() {
	log.SetFlags(0)

	// 1. Get a hyper-spectral cube. Real applications load HSIC files
	//    (hsi.LoadFile); here we synthesize a small HYDICE-like scene.
	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 128, Height: 128, Bands: 64, Seed: 42,
		NoiseSigma: 6, Illumination: 0.12,
		OpenVehicles: 2, CamouflagedVehicles: 1,
		SpectralVariability: 0.12,
	})
	if err != nil {
		log.Fatal(err)
	}
	cube := scene.Cube
	fmt.Printf("input: %s (%.1f MB)\n", cube, float64(cube.EncodedSize())/(1<<20))

	// 2. Fuse it: a manager and 4 workers running as goroutines,
	//    exchanging real messages through scplib.
	res, err := core.Fuse(scplib.NewRealSystem(), cube, core.Options{
		Workers:     4,
		Granularity: 2,    // 8 sub-cubes: overlap communication/computation
		Threshold:   0.03, // spectral-angle screening threshold (radians)
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result.
	fmt.Printf("unique spectral set: K=%d of %d pixels (%.1f%% kept by screening)\n",
		res.UniqueSetSize, cube.Pixels(), 100*float64(res.UniqueSetSize)/float64(cube.Pixels()))
	fmt.Printf("top principal components (variance): %.3g, %.3g, %.3g\n",
		res.Eigenvalues[0], res.Eigenvalues[1], res.Eigenvalues[2])

	// 4. Save the composite (PC1→luminance, PC2→red-green, PC3→blue-
	//    yellow, the paper's human-centered mapping).
	if err := colormap.WritePNG("quickstart_composite.png", res.Image); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_composite.png")
}
