// Classification: the post-processing step the paper sketches — use
// spectral angles against a signature library (SAM, Kruse et al.) to
// detect and classify the vehicles in the fused scene, including the
// camouflaged one in the lower-left corner.
//
//	go run ./examples/classification
package main

import (
	"fmt"
	"log"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/spectral"
)

func main() {
	log.SetFlags(0)

	scene, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 96, Height: 96, Bands: 96, Seed: 3,
		NoiseSigma: 5, Illumination: 0.1,
		OpenVehicles: 2, CamouflagedVehicles: 1,
		SpectralVariability: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cube := scene.Cube
	pixels := cube.Pixels()

	sam, err := spectral.MaterialSAM(cube.Wavelengths)
	if err != nil {
		log.Fatal(err)
	}
	labels, angles := sam.ClassifyCube(cube)

	// Confusion counts per true material.
	type key struct{ truth, got string }
	counts := make(map[key]int)
	correct, total := 0, 0
	var vehicleFound, camoVehicleRegion bool
	for i, lab := range labels {
		truth := scene.Truth[i]
		got := sam.Labels[lab]
		counts[key{truth.String(), got}]++
		if truth.String() == got {
			correct++
		}
		total++
		if got == "vehicle" {
			vehicleFound = true
			x, y := i%cube.Width, i/cube.Width
			if x < cube.Width/3 && y > 2*cube.Height/3 {
				camoVehicleRegion = true
			}
		}
	}

	fmt.Printf("SAM classification of %d pixels against %d material signatures\n",
		pixels, len(sam.Labels))
	fmt.Printf("overall accuracy: %.1f%%\n\n", 100*float64(correct)/float64(total))

	fmt.Println("per-class recall:")
	for _, m := range hsi.Materials() {
		var hit, tot int
		for k, n := range counts {
			if k.truth == m.String() {
				tot += n
				if k.got == m.String() {
					hit += n
				}
			}
		}
		if tot == 0 {
			continue
		}
		fmt.Printf("  %-12s %6.1f%%  (%d px)\n", m, 100*float64(hit)/float64(tot), tot)
	}

	var meanAngle float64
	for _, a := range angles {
		meanAngle += a
	}
	meanAngle /= float64(len(angles))
	fmt.Printf("\nmean spectral angle to best match: %.4f rad\n", meanAngle)
	fmt.Printf("mechanized vehicles detected: %v\n", vehicleFound)
	fmt.Printf("vehicle pixels in the camouflage region (lower-left): %v\n", camoVehicleRegion)
}
