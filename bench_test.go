// Package bench holds the repository-level benchmark harness: one
// benchmark per figure/claim of the paper's evaluation (on the reduced
// "small" scale so `go test -bench=.` completes quickly — cmd/perfchart
// runs the full paper scale), plus kernel and ablation benchmarks.
//
// Simulated-cluster benchmarks report the *virtual* execution time as the
// custom metric virtual_s; wall-clock ns/op measures the simulator itself.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/experiments"
	"resilientfusion/internal/failure"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/linalg"
	"resilientfusion/internal/pct"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/spectral"
	"resilientfusion/internal/telemetry"
)

var (
	sceneOnce sync.Once
	benchCube *hsi.Cube
)

func cube(b *testing.B) *hsi.Cube {
	sceneOnce.Do(func() {
		scene, err := hsi.GenerateScene(experiments.SmallScale().Scene)
		if err != nil {
			panic(err)
		}
		benchCube = scene.Cube
	})
	b.Helper()
	return benchCube
}

// runSim executes one simulated fusion and reports virtual seconds.
func runSim(b *testing.B, cfg experiments.RunConfig) *experiments.RunOutcome {
	b.Helper()
	out, err := experiments.RunOnCube(cfg, cube(b))
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// --- E1: Figure 4 ---

func BenchmarkFig4NoResiliency(b *testing.B) {
	scale := experiments.SmallScale()
	fixedS := 2 * scale.Procs[len(scale.Procs)-1]
	for _, p := range scale.Procs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: p, Granularity: fixedS / p, Replication: 1,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

func BenchmarkFig4Resiliency2(b *testing.B) {
	scale := experiments.SmallScale()
	fixedS := 2 * scale.Procs[len(scale.Procs)-1]
	for _, p := range scale.Procs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: p, Granularity: fixedS / p,
					Replication: 2, Regenerate: true,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- E2: Figure 5 ---

func BenchmarkFig5Granularity(b *testing.B) {
	scale := experiments.SmallScale()
	p := scale.Fig5Procs[len(scale.Fig5Procs)-1]
	for _, g := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("P=%d/subcubes=%dxP", p, g), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: p, Granularity: g, Replication: 1,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- E2b: sub-cube sweep (tail-off) ---

func BenchmarkFig5SubCubeSweep(b *testing.B) {
	scale := experiments.SmallScale()
	p := scale.Procs[len(scale.Procs)-1]
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subcubes=%d", g*p), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: p, Granularity: g, Replication: 1,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- E6: shared-memory model ---

func BenchmarkSharedMemorySpeedup(b *testing.B) {
	scale := experiments.SmallScale()
	for _, p := range scale.Procs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: p, Granularity: 3, Replication: 1,
					Network: experiments.NetShared,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- E7: regeneration under attack ---

func BenchmarkRegeneration(b *testing.B) {
	scale := experiments.SmallScale()
	plan := &failure.Plan{Events: []failure.Event{
		failure.KillReplica(1.0, 1, 0),
		failure.KillReplica(1.5, 2, 1),
	}}
	var last *experiments.RunOutcome
	for i := 0; i < b.N; i++ {
		last = runSim(b, experiments.RunConfig{
			Scale: scale, Workers: 4, Granularity: 2,
			Replication: 2, Regenerate: true, Plan: plan,
			RequestTimeout: 1e4,
		})
	}
	b.ReportMetric(last.Result.Times.Total, "virtual_s")
	b.ReportMetric(float64(last.Regenerations), "regenerations")
}

// --- A5: replication level scaling ---

func BenchmarkReplicationLevels(b *testing.B) {
	scale := experiments.SmallScale()
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: 4, Granularity: 2,
					Replication: r, Regenerate: r > 1,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- A2: communication/computation overlap ---

func BenchmarkAblationPrefetch(b *testing.B) {
	scale := experiments.SmallScale()
	for _, pf := range []int{-1, 1} {
		name := "overlap"
		if pf < 0 {
			name = "no-overlap"
		}
		b.Run(name, func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: 4, Granularity: 3, Replication: 1,
					Prefetch: pf,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- A3: shared bus vs switched fabric ---

func BenchmarkAblationNetworkModel(b *testing.B) {
	scale := experiments.SmallScale()
	for _, net := range []struct {
		name string
		n    experiments.Network
	}{{"bus", experiments.NetBus}, {"switched", experiments.NetSwitched}} {
		b.Run(net.name, func(b *testing.B) {
			var last *experiments.RunOutcome
			for i := 0; i < b.N; i++ {
				last = runSim(b, experiments.RunConfig{
					Scale: scale, Workers: 8, Granularity: 2, Replication: 1,
					Network: net.n,
				})
			}
			b.ReportMetric(last.Result.Times.Total, "virtual_s")
		})
	}
}

// --- A1: spectral screening vs plain PCT ---

func BenchmarkAblationScreening(b *testing.B) {
	c := cube(b)
	for _, disable := range []bool{false, true} {
		name := "screening"
		if disable {
			name = "plain-pct"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pct.Run(c, pct.Options{Threshold: 0.03, DisableScreening: disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A4: eigensolvers at the paper's band counts ---

func BenchmarkEigenSolvers(b *testing.B) {
	for _, n := range []int{105, 210} {
		m := randomCovariance(n)
		for _, solver := range []linalg.EigenSolver{linalg.SolverTridiagQL, linalg.SolverJacobi} {
			b.Run(fmt.Sprintf("n=%d/%s", n, solver), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := linalg.EigenSymWith(m, solver); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func randomCovariance(n int) *linalg.Matrix {
	base := linalg.NewMatrix(n, n)
	for i := range base.Data {
		base.Data[i] = float64((i*2654435761)%1000)/500 - 1
	}
	bt := base.Transpose()
	m, err := base.Mul(bt)
	if err != nil {
		panic(err)
	}
	m.Symmetrize()
	return m
}

// --- Kernels ---

func BenchmarkScreen(b *testing.B) {
	c := cube(b)
	sub, err := hsi.Extract(c, hsi.RowRange{Y0: 0, Y1: c.Height / 2})
	if err != nil {
		b.Fatal(err)
	}
	vectors := sub.PixelVectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.Screen(vectors, 0.03); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	paperSubOnce sync.Once
	paperSubVecs []linalg.Vector
)

// paperSubVectors stages the pixel vectors of one paper-geometry
// sub-cube: §4's 320×320×105 cube split into 32 sub-cubes (P=16,
// granularity 2) gives 10-row slabs of 3200 pixels — the unit of
// screening work a worker performs per request.
func paperSubVectors(b *testing.B) []linalg.Vector {
	paperSubOnce.Do(func() {
		scene, err := hsi.GenerateScene(experiments.PaperScale().Scene)
		if err != nil {
			panic(err)
		}
		sub, err := hsi.Extract(scene.Cube, hsi.Partition(scene.Cube.Height, 32)[0])
		if err != nil {
			panic(err)
		}
		paperSubVecs = sub.PixelVectors()
	})
	b.Helper()
	return paperSubVecs
}

// BenchmarkScreenBatched measures the deterministic parallel screening
// engine on the paper-geometry sub-cube: seq is the sequential Screen
// reference on the same input, par=N the batched engine at that
// parallelism (output bit-identical across all cases). Recorded with
// BenchmarkScreen to BENCH_screen.json via cmd/benchkernels -screen.
func BenchmarkScreenBatched(b *testing.B) {
	vectors := paperSubVectors(b)
	threshold := experiments.PaperScale().Threshold
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := spectral.Screen(vectors, threshold); err != nil {
				b.Fatal(err)
			}
		}
	})
	pars := []int{1, 2, 4}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 2 && gm != 4 {
		pars = append(pars, gm)
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := spectral.ScreenBatched(vectors, threshold, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMeanOf(b *testing.B) {
	c := cube(b)
	vectors := (&hsi.SubCube{Range: hsi.RowRange{Y1: c.Height}, Cube: c}).PixelVectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pct.MeanOf(vectors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCovarianceSum(b *testing.B) {
	c := cube(b)
	u, _, err := spectral.Screen((&hsi.SubCube{Range: hsi.RowRange{Y1: c.Height}, Cube: c}).PixelVectors(), 0.03)
	if err != nil {
		b.Fatal(err)
	}
	mean, err := pct.MeanOf(u.Members)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pct.CovarianceSum(u.Members, mean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformCube(b *testing.B) {
	c := cube(b)
	res, err := pct.Run(c, pct.Options{Threshold: 0.03})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pct.TransformCube(c, res.Transform, res.Mean); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead is the telemetry-overhead guard: the two
// hottest kernels run bare (metrics=off) and wrapped with exactly the
// per-message instrumentation the service worker adds around a kernel
// call (metrics=on) — one time.Now, one histogram observation, one
// trace span. The kernels themselves are untouched by telemetry (spans
// sit outside inner loops), so the pair bounds the whole-path cost.
// Recorded to BENCH_telemetry.json via cmd/benchkernels -telemetry,
// which also computes the on/off overhead percentage; the budget is
// < 2%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	vectors := paperSubVectors(b)
	threshold := experiments.PaperScale().Threshold
	c := cube(b)
	res, err := pct.Run(c, pct.Options{Threshold: 0.03})
	if err != nil {
		b.Fatal(err)
	}
	kernels := []struct {
		name string
		op   func() error
	}{
		{"ScreenBatched", func() error {
			_, _, err := spectral.ScreenBatched(vectors, threshold, 4)
			return err
		}},
		{"TransformCube", func() error {
			_, err := pct.TransformCube(c, res.Transform, res.Mean)
			return err
		}},
	}
	for _, k := range kernels {
		b.Run(k.name+"/metrics=off", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := k.op(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(k.name+"/metrics=on", func(b *testing.B) {
			reg := telemetry.NewRegistry()
			hist := reg.Histogram("fusion_worker_stage_seconds",
				"Per-message kernel latency.", telemetry.DefBuckets)
			tr := telemetry.NewTraceRecorder(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := tr.Now()
				t0 := time.Now()
				if err := k.op(); err != nil {
					b.Fatal(err)
				}
				hist.Observe(time.Since(t0).Seconds())
				tr.Stage("kernel", i, start, tr.Now())
			}
		})
	}
}

// BenchmarkCovarianceSumDense measures step 4 at its production shape —
// plain-PCT statistics over every pixel (the ablation A1 workload and
// the worst case a worker sees), where the screened benchmark above
// reduces to a handful of vectors. This is the shape the blocked SYRK
// and the shard-parallel reduction are built for.
func BenchmarkCovarianceSumDense(b *testing.B) {
	c := cube(b)
	vectors := (&hsi.SubCube{Range: hsi.RowRange{Y1: c.Height}, Cube: c}).PixelVectors()
	mean, err := pct.MeanOf(vectors)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pct.CovarianceSum(vectors, mean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubeCodec(b *testing.B) {
	c := cube(b)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(c.EncodedSize())
		for i := 0; i < b.N; i++ {
			var sink countWriter
			if _, err := c.WriteTo(&sink); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type countWriter int64

func (w *countWriter) Write(p []byte) (int, error) {
	*w += countWriter(len(p))
	return len(p), nil
}

// --- Pluggable fusion algorithms ---

// BenchmarkAlgorithms compares the registered fusion algorithms on the
// same scene through the sequential oracle — the PCT protocol pipeline
// against the pyramid and DWT tile kernels, at serial and parallel
// kernel settings (the output is parallelism-invariant; only the wall
// clock moves). Recorded to BENCH_algorithms.json via cmd/benchkernels
// -algorithms.
func BenchmarkAlgorithms(b *testing.B) {
	c := cube(b)
	for _, alg := range []string{"pct", "pyramid", "dwt"} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/par=%d", alg, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Sequential(c, core.Options{
						Workers: 4, Granularity: 2, Threshold: 0.03,
						Parallelism: par, Algorithm: alg,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Real-runtime end-to-end (true parallelism on the host) ---

func BenchmarkRealRuntimeFusion(b *testing.B) {
	c := cube(b)
	for _, p := range []int{1, 2} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Fuse(scplib.NewRealSystem(), c, core.Options{
					Workers: p, Granularity: 2, Threshold: 0.03,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
