module resilientfusion

go 1.24
