// Command fusion runs the spectral-screening PCT pipeline end to end on a
// synthetic HYDICE-like scene and writes the paper's image artifacts:
// raw band frames (Figure 2: 400 nm and 1998 nm), the fused
// color-composite (Figure 3), and the scene's ground-truth map.
//
// Usage:
//
//	fusion -out out/ [-width 320 -height 320 -bands 210 -seed 1]
//	       [-workers 4 -granularity 2 -replication 1 -threshold 0.03]
//	       [-in cube.hsic] [-scene scene.hdr] [-mode sim|real|seq]
//
// -scene fuses an ENVI-style scene file (BIL/BSQ/BIP raster + text
// header, by header or data path) through the streaming tile path: row
// tiles are decoded off disk on demand, so scenes larger than memory
// fuse with a bounded working set, bit-identically to an in-memory run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"resilientfusion/internal/colormap"
	"resilientfusion/internal/core"
	"resilientfusion/internal/hsi"
	"resilientfusion/internal/perfmodel"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/scplib"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fusion: ")

	var (
		out         = flag.String("out", "out", "output directory for PNGs")
		in          = flag.String("in", "", "input cube in HSIC format (default: generate a synthetic scene)")
		scenePath   = flag.String("scene", "", "input ENVI scene (header or data path), fused via the streaming tile path")
		width       = flag.Int("width", 320, "scene width in pixels")
		height      = flag.Int("height", 320, "scene height in pixels")
		bands       = flag.Int("bands", 210, "spectral bands (HYDICE: 210)")
		seed        = flag.Int64("seed", 1, "scene generator seed")
		workers     = flag.Int("workers", 4, "worker count P")
		granularity = flag.Int("granularity", 2, "sub-cubes = granularity x workers")
		replication = flag.Int("replication", 1, "resiliency level (1 = none, 2 = paper's level)")
		threshold   = flag.Float64("threshold", 0.03, "spectral angle screening threshold (radians)")
		mode        = flag.String("mode", "sim", "execution mode: sim (virtual cluster), real (goroutines), seq (sequential reference)")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	opts := core.Options{
		Workers:     *workers,
		Granularity: *granularity,
		Threshold:   *threshold,
		Replication: *replication,
		Regenerate:  *replication > 1,
	}

	var cube *hsi.Cube
	var truth []hsi.Material
	var src core.CubeSource // streaming tile source (scene mode)
	switch {
	case *scenePath != "":
		rdr, err := scene.Open(*scenePath)
		if err != nil {
			log.Fatalf("opening scene %s: %v", *scenePath, err)
		}
		defer rdr.Close()
		h := rdr.Header()
		log.Printf("opened ENVI scene %s: %dx%dx%d %s (data type %d), streaming",
			*scenePath, h.Samples, h.Lines, h.Bands, h.Interleave, int(h.DataType))
		if *mode == "seq" {
			// The sequential oracle needs the whole cube in memory.
			if cube, err = rdr.ReadCube(); err != nil {
				log.Fatalf("reading scene: %v", err)
			}
		} else {
			// Read-ahead over the decomposition the manager will derive:
			// the next row-window decodes off disk while the current
			// tile is encoded for the wire (bit-identical output).
			pre := scene.NewPrefetchTiler(scene.NewTiler(rdr), opts.TileRanges(h.Lines))
			defer pre.Drain()
			src = pre
		}
	case *in != "":
		var err error
		cube, err = hsi.LoadFile(*in)
		if err != nil {
			log.Fatalf("loading %s: %v", *in, err)
		}
		log.Printf("loaded %s", cube)
	default:
		spec := hsi.DefaultSceneSpec()
		spec.Width, spec.Height, spec.Bands, spec.Seed = *width, *height, *bands, *seed
		scene, err := hsi.GenerateScene(spec)
		if err != nil {
			log.Fatal(err)
		}
		cube, truth = scene.Cube, scene.Truth
		log.Printf("generated synthetic HYDICE scene %s", cube)
	}

	if src == nil && cube != nil {
		src = core.MemSource(cube)
	}
	var res *core.Result
	var err error
	switch *mode {
	case "seq":
		res, err = core.Sequential(cube, opts)
	case "real":
		res, err = core.FuseSource(scplib.NewRealSystem(), src, opts)
	case "sim":
		x, nodes := scplib.NewCluster(*workers+1, perfmodel.EffectiveWorkstationRate)
		sys := scplib.NewSimSystem(x, x.NewBus(0, 0), nodes, scplib.DefaultMsgCost())
		res, err = core.FuseSource(sys, src, opts)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fused: unique set K=%d, eigenvalues (top 3) %.4g %.4g %.4g",
		res.UniqueSetSize, res.Eigenvalues[0], res.Eigenvalues[1], res.Eigenvalues[2])
	if *mode == "sim" {
		log.Printf("virtual cluster time: %.2f s (screen %.2f, stats %.2f, eigen %.2f, transform %.2f)",
			res.Times.Total, res.Times.Screen, res.Times.Statistics-res.Times.Screen,
			res.Times.Eigen-res.Times.Statistics, res.Times.Transform-res.Times.Eigen)
	}

	write := func(name string, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		log.Printf("wrote %s", filepath.Join(*out, name))
	}

	// Figure 2: two raw frames (needs the cube in memory; streamed scene
	// runs keep only the composite).
	if cube != nil {
		for _, nm := range []float64{400, 1998} {
			img, band, err := colormap.RenderBandNearest(cube, nm)
			if err != nil {
				log.Fatalf("band %gnm: %v", nm, err)
			}
			name := fmt.Sprintf("band_%dnm.png", int(nm))
			write(name, colormap.WritePNG(filepath.Join(*out, name), img))
			_ = band
		}
	} else {
		log.Print("streamed scene run: skipping raw band frames (cube not held in memory)")
	}
	// Figure 3: the fused color composite.
	write("composite.png", colormap.WritePNG(filepath.Join(*out, "composite.png"), res.Image))
	// Ground truth (synthetic scenes only).
	if truth != nil {
		img, err := colormap.RenderTruth(truth, cube.Width, cube.Height)
		if err != nil {
			log.Fatal(err)
		}
		write("truth.png", colormap.WritePNG(filepath.Join(*out, "truth.png"), img))
	}
}
