// Command perfchart regenerates the paper's evaluation figures on the
// simulated cluster and prints them as tables (optionally CSV).
//
//	perfchart -fig 4            Figure 4: time vs processors, ±resiliency
//	perfchart -fig 4 -speedup   derived speedups + overhead decomposition
//	perfchart -fig 5            Figure 5: granularity control
//	perfchart -fig 5b           sub-cube count sweep (tail-off past ~32)
//	perfchart -sharedmem        shared-memory model (≈5%-of-linear claim)
//	perfchart -regen            attack + regeneration experiment
//	perfchart -all              everything
//
// -scale small runs a reduced configuration in a few seconds; the default
// paper scale reproduces §4's 320×320×105 cube on 16 nodes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"resilientfusion/internal/experiments"
	"resilientfusion/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfchart: ")
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 4, 5, or 5b")
		speedup   = flag.Bool("speedup", false, "with -fig 4: print derived speedup table")
		sharedmem = flag.Bool("sharedmem", false, "run the shared-memory (zero-communication) sweep")
		regen     = flag.Bool("regen", false, "run the attack/regeneration experiment")
		all       = flag.Bool("all", false, "run every experiment")
		scaleName = flag.String("scale", "paper", "experiment scale: paper or small")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		par       = flag.Int("parallelism", 0,
			"host kernel parallelism per simulated worker (0: all cores; negative: serial); results are bit-identical either way")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "paper":
		scale = experiments.PaperScale()
	case "small":
		scale = experiments.SmallScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	// Paper-scale sweeps screen and transform a 320×320×105 cube dozens
	// of times; multicore kernels cut the wall clock while the simulated
	// virtual times stay exact (fixed shard grids).
	scale.Parallelism = *par

	emit := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Write(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	ran := false
	if *all || *fig == "4" {
		ran = true
		log.Printf("running Figure 4 sweep (%s scale)...", scale.Name)
		f4, err := experiments.RunFig4(scale)
		if err != nil {
			log.Fatal(err)
		}
		emit(f4.Table())
		if *speedup || *all {
			emit(f4.SpeedupTable())
			emit(f4.ScreenTable())
			fmt.Printf("worst shortfall from linear (no resiliency): %.1f%%\n",
				100*metrics.WithinOfLinear(f4.SpeedupBase, f4.Procs))
			fmt.Printf("mean overhead beyond replication factor: %.1f%%\n\n",
				100*metrics.Mean(f4.OverheadBeyondReplication))
			if n := len(f4.ScreenStats); n > 0 {
				st := f4.ScreenStats[0]
				fmt.Printf("screening workload per run: %d comparisons by the engine, %d sequential-equivalent charged to the cost model\n\n",
					st.Comparisons, st.SeqComparisons)
			}
		}
	}
	if *all || *fig == "5" {
		ran = true
		log.Printf("running Figure 5 sweep (%s scale)...", scale.Name)
		f5, err := experiments.RunFig5(scale)
		if err != nil {
			log.Fatal(err)
		}
		emit(f5.Table())
	}
	if *all || *fig == "5b" {
		ran = true
		log.Printf("running sub-cube sweep (%s scale)...", scale.Name)
		sw, err := experiments.RunSubCubeSweep(scale, []int{1, 2, 3, 4, 6, 8})
		if err != nil {
			log.Fatal(err)
		}
		emit(sw.Table())
	}
	if *all || *sharedmem {
		ran = true
		log.Printf("running shared-memory sweep (%s scale)...", scale.Name)
		sm, err := experiments.RunSharedMemory(scale)
		if err != nil {
			log.Fatal(err)
		}
		emit(sm.Table())
		fmt.Printf("worst shortfall from linear: %.1f%%\n\n", 100*sm.WorstShortfall)
	}
	if *all || *regen {
		ran = true
		log.Printf("running regeneration experiment (%s scale)...", scale.Name)
		workers := scale.Procs[len(scale.Procs)-1] / 2
		if workers < 2 {
			workers = 2
		}
		rg, err := experiments.RunRegeneration(scale, workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# Regeneration under attack (P=%d, replication 2)\n", workers)
		fmt.Printf("failure-free time:        %10.2f s\n", rg.BaselineTime)
		fmt.Printf("attacked time:            %10.2f s (+%.1f%%)\n", rg.AttackedTime, rg.SlowdownPct)
		fmt.Printf("failures detected:        %10d\n", rg.Detections)
		fmt.Printf("replicas regenerated:     %10d\n", rg.Regenerations)
		fmt.Printf("mean detection latency:   %10.2f s\n", rg.MeanDetectLatency)
		fmt.Printf("mean regeneration latency:%10.2f s\n\n", rg.MeanRegenLatency)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
