// Command benchkernels runs the kernel benchmarks and records their
// ns/op and allocs/op into BENCH_kernels.json, appending (or replacing)
// one labeled entry per invocation. The checked-in file tracks the
// kernel perf trajectory PR over PR: each optimization lands alongside a
// fresh "post-..." entry next to the "pre-..." baseline it was measured
// against, on the same host.
//
// Usage:
//
//	go run ./cmd/benchkernels -label post-PR2
//	go run ./cmd/benchkernels -label pre-PR2 -input saved-bench-output.txt
//	go run ./cmd/benchkernels -label post-PR4 -screen
//
// -screen selects the screening-engine benchmark pair
// (BenchmarkScreen/BenchmarkScreenBatched) and records it to
// BENCH_screen.json instead of the kernel set.
//
// -telemetry selects the telemetry-overhead guard
// (BenchmarkTelemetryOverhead's metrics=on/off pairs), records it to
// BENCH_telemetry.json, and adds each kernel's on-vs-off overhead
// percentage to the entry; the budget is < 2% per kernel.
//
// -algorithms selects the fusion-algorithm comparison
// (BenchmarkAlgorithms: pct vs pyramid vs dwt on the same scene) and
// records it to BENCH_algorithms.json.
//
// Without -input the tool runs `go test -run ^$ -bench <set> -benchmem`
// itself (with -count runs, keeping each benchmark's fastest run to damp
// scheduler noise). With -input it parses a previously captured `go test
// -bench` output instead — how a baseline taken before a change is
// recorded after the fact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"resilientfusion/internal/linalg"
)

// benchSet is the tracked kernel set: the hot per-worker kernels plus
// the real-runtime end-to-end fusion.
const benchSet = "BenchmarkScreen$|BenchmarkMeanOf$|BenchmarkCovarianceSum$|BenchmarkCovarianceSumDense$|BenchmarkTransformCube$|BenchmarkRealRuntimeFusion"

// screenBenchSet is the screening-engine set tracked in
// BENCH_screen.json (-screen): the sequential kernel on the small scene
// plus the sequential-vs-batched pair on the paper-geometry sub-cube.
const screenBenchSet = "BenchmarkScreen$|BenchmarkScreenBatched"

// telemetryBenchSet is the telemetry-overhead guard tracked in
// BENCH_telemetry.json (-telemetry): each kernel bare vs wrapped with
// the service layer's per-message instrumentation.
const telemetryBenchSet = "BenchmarkTelemetryOverhead"

// algorithmsBenchSet is the fusion-algorithm comparison tracked in
// BENCH_algorithms.json (-algorithms): the PCT protocol pipeline vs the
// pyramid and DWT tile kernels on the same scene.
const algorithmsBenchSet = "BenchmarkAlgorithms"

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type entry struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	CPU        string                 `json:"cpu,omitempty"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchtime  string                 `json:"benchtime"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// OverheadPct maps kernel name to the metrics=on vs metrics=off
	// ns/op delta in percent (-telemetry runs only).
	OverheadPct map[string]float64 `json:"overhead_pct,omitempty"`
}

type file struct {
	Comment string  `json:"comment"`
	Entries []entry `json:"entries"`
}

// benchLine matches one `go test -bench -benchmem` result line.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ \S+)*?\s+(\d+) B/op\s+(\d+) allocs/op`)

// procSuffix captures the -N GOMAXPROCS suffix of a benchmark name.
var procSuffix = regexp.MustCompile(`^Benchmark\S+?-(\d+)\s`)

func main() {
	label := flag.String("label", "", "entry label (e.g. pre-PR2, post-PR2); required")
	out := flag.String("out", "BENCH_kernels.json", "JSON file to update")
	input := flag.String("input", "", "parse this saved `go test -bench` output instead of running")
	benchtime := flag.String("benchtime", "2s", "benchtime per run")
	count := flag.Int("count", 3, "runs per benchmark; the fastest is kept")
	bench := flag.String("bench", benchSet, "benchmark regex")
	screen := flag.Bool("screen", false,
		"record the screening-engine set to BENCH_screen.json (overrides -bench/-out defaults)")
	telemetry := flag.Bool("telemetry", false,
		"record the telemetry-overhead guard to BENCH_telemetry.json with on/off overhead percentages")
	algorithms := flag.Bool("algorithms", false,
		"record the fusion-algorithm comparison to BENCH_algorithms.json (overrides -bench/-out defaults)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchkernels: -label is required")
		os.Exit(2)
	}
	if *screen {
		if *bench == benchSet {
			*bench = screenBenchSet
		}
		if *out == "BENCH_kernels.json" {
			*out = "BENCH_screen.json"
		}
	}
	if *telemetry {
		if *bench == benchSet {
			*bench = telemetryBenchSet
		}
		if *out == "BENCH_kernels.json" {
			*out = "BENCH_telemetry.json"
		}
	}
	if *algorithms {
		if *bench == benchSet {
			*bench = algorithmsBenchSet
		}
		if *out == "BENCH_kernels.json" {
			*out = "BENCH_algorithms.json"
		}
	}

	var text string
	if *input != "" {
		raw, err := os.ReadFile(*input)
		if err != nil {
			fatal(err)
		}
		text = string(raw)
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "."}
		fmt.Fprintf(os.Stderr, "benchkernels: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go test -bench failed: %w", err))
		}
		text = string(raw)
	}

	hdr, results := parse(text)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	e := entry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        hdr.cpu,
		GOMAXPROCS: linalg.MaxWorkers(),
		Benchtime:  *benchtime,
		Benchmarks: results,
	}
	if *input != "" {
		// The entry must describe the run that produced the saved output,
		// not the machine doing the recording: take goos/goarch from the
		// output header and mark fields the output does not carry.
		e.GOOS, e.GOARCH = hdr.goos, hdr.goarch
		e.GOMAXPROCS = hdr.maxprocs
		e.Benchtime = "unknown (recorded from -input)"
	}
	if *telemetry {
		e.OverheadPct = overheads(results)
		for kernel, pct := range e.OverheadPct {
			fmt.Fprintf(os.Stderr, "benchkernels: %s telemetry overhead %+.2f%%\n", kernel, pct)
		}
	}

	var f file
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
	}
	f.Comment = "Kernel benchmark trajectory; maintained by cmd/benchkernels. " +
		"Entries are labeled per PR (pre-/post-); fastest of -count runs per benchmark."
	replaced := false
	for i := range f.Entries {
		if f.Entries[i].Label == *label {
			f.Entries[i] = e
			replaced = true
		}
	}
	if !replaced {
		f.Entries = append(f.Entries, e)
	}
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchkernels: recorded %d benchmarks as %q in %s\n", len(results), *label, *out)
}

// header is the metadata go test prints before the benchmark lines. The
// GOMAXPROCS of the run is recovered from the -N benchmark name suffix
// (absent means 1).
type header struct {
	goos, goarch, cpu string
	maxprocs          int
}

// parse extracts the output header and the fastest result per benchmark
// name (GOMAXPROCS suffix stripped; sub-benchmark names kept).
func parse(text string) (hdr header, results map[string]benchResult) {
	hdr.maxprocs = 1
	results = make(map[string]benchResult)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			hdr.cpu = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "goos:"); ok {
			hdr.goos = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "goarch:"); ok {
			hdr.goarch = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if suffix := procSuffix.FindStringSubmatch(line); suffix != nil {
			if n, err := strconv.Atoi(suffix[1]); err == nil && n > hdr.maxprocs {
				hdr.maxprocs = n
			}
		}
		ns, err1 := strconv.ParseFloat(m[2], 64)
		bytes, err2 := strconv.ParseInt(m[3], 10, 64)
		allocs, err3 := strconv.ParseInt(m[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		name := m[1]
		if prev, ok := results[name]; !ok || ns < prev.NsPerOp {
			results[name] = benchResult{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
		}
	}
	return hdr, results
}

// overheads pairs ".../metrics=on" results with their ".../metrics=off"
// baselines and returns the ns/op delta in percent per kernel.
func overheads(results map[string]benchResult) map[string]float64 {
	out := make(map[string]float64)
	for name, on := range results {
		kernel, ok := strings.CutSuffix(name, "/metrics=on")
		if !ok {
			continue
		}
		off, ok := results[kernel+"/metrics=off"]
		if !ok || off.NsPerOp == 0 {
			continue
		}
		key := kernel[strings.LastIndex(kernel, "/")+1:]
		out[key] = (on.NsPerOp - off.NsPerOp) / off.NsPerOp * 100
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchkernels:", err)
	os.Exit(1)
}
