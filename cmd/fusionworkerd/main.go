// fusionworkerd is the remote worker daemon of fusiond's cluster mode:
// it dials the coordinator (-connect), receives a node slot, and hosts
// fusion worker replicas the coordinator spawns into it over the wire.
// Replica state lives in the resilient runtime's wrapper (heartbeats,
// sequence dedupe, snapshot transfer), so a SIGKILLed fusionworkerd
// loses nothing the guardian cannot regenerate elsewhere.
//
//	fusionworkerd -connect coordinator:9310
//
// The daemon keeps re-dialing: each connect attempt retries with capped
// exponential backoff inside -dial-window, and after a served session
// ends (coordinator restart, network cut) it loops back to dialing until
// -total-window of consecutive failure elapses (0 means forever). SIGINT
// and SIGTERM exit cleanly.
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
)

// registry builds the thread bodies this process can host: the resilient
// wrapper around the fusion worker loop.
func registry() *scplib.BodyRegistry {
	inner := resilient.NewBodyRegistry()
	core.RegisterWorkerBodies(inner)
	reg := scplib.NewBodyRegistry()
	resilient.RegisterWrapperBody(reg, inner)
	return reg
}

func main() {
	connect := flag.String("connect", "127.0.0.1:9310", "coordinator address (fusiond -cluster)")
	dialWindow := flag.Duration("dial-window", 10*time.Second, "per-attempt connect retry window (capped exponential backoff)")
	totalWindow := flag.Duration("total-window", 0, "give up after this much consecutive disconnection (0: retry forever)")
	flag.Parse()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// The dial loop and the signal handler exchange the live worker via
	// mu; stopping covers the window where a signal lands while a dial is
	// still in flight (the fresh worker is shut down as soon as it is
	// published).
	var (
		mu       sync.Mutex
		worker   *scplib.ClusterWorker
		stopping atomic.Bool
	)
	done := make(chan error, 1)
	go func() {
		lastServed := time.Now()
		for {
			w, err := scplib.DialCluster(*connect, *dialWindow, registry())
			if stopping.Load() {
				if err == nil {
					w.Shutdown()
				}
				done <- nil
				return
			}
			if err != nil {
				if *totalWindow > 0 && time.Since(lastServed) > *totalWindow {
					done <- err
					return
				}
				log.Printf("fusionworkerd: dial %s: %v — retrying", *connect, err)
				continue
			}
			mu.Lock()
			worker = w
			mu.Unlock()
			log.Printf("fusionworkerd: serving node %d for %s", w.Node(), *connect)
			err = w.Run()
			lastServed = time.Now()
			if err == nil || stopping.Load() {
				// Orderly shutdown (local signal or coordinator bye).
				done <- nil
				return
			}
			log.Printf("fusionworkerd: session ended: %v — re-dialing", err)
		}
	}()

	select {
	case <-stop:
		log.Print("fusionworkerd: signal — shutting down")
		stopping.Store(true)
		mu.Lock()
		w := worker
		mu.Unlock()
		if w != nil {
			w.Shutdown()
		}
		<-done
	case err := <-done:
		if err != nil && !errors.Is(err, scplib.ErrStopped) {
			log.Fatalf("fusionworkerd: %v", err)
		}
	}
	log.Print("fusionworkerd: stopped")
}
