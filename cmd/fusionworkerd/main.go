// fusionworkerd is the remote worker daemon of fusiond's cluster mode:
// it dials the coordinator (-connect), receives a node slot, and hosts
// fusion worker replicas the coordinator spawns into it over the wire.
// Replica state lives in the resilient runtime's wrapper (heartbeats,
// sequence dedupe, snapshot transfer), so a SIGKILLed fusionworkerd
// loses nothing the guardian cannot regenerate elsewhere.
//
//	fusionworkerd -connect coordinator:9310
//
// The daemon keeps re-dialing: each connect attempt retries with capped
// exponential backoff inside -dial-window, and after a served session
// ends (coordinator restart, network cut) it loops back to dialing until
// -total-window of consecutive failure elapses (0 means forever). SIGINT
// and SIGTERM exit cleanly.
//
// Logs are structured (log/slog): -log-format text|json, -log-level
// debug|info|warn|error. -ops-addr opens an operations listener with
// net/http/pprof under /debug/pprof/ and /metrics exposing the daemon's
// own dial/session counters in Prometheus text format.
package main

import (
	"errors"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"resilientfusion/internal/core"
	"resilientfusion/internal/resilient"
	"resilientfusion/internal/scplib"
	"resilientfusion/internal/telemetry"
)

// registry builds the thread bodies this process can host: the resilient
// wrapper around the fusion worker loop.
func registry() *scplib.BodyRegistry {
	inner := resilient.NewBodyRegistry()
	core.RegisterWorkerBodies(inner)
	reg := scplib.NewBodyRegistry()
	resilient.RegisterWrapperBody(reg, inner)
	return reg
}

func main() {
	connect := flag.String("connect", "127.0.0.1:9310", "coordinator address (fusiond -cluster)")
	dialWindow := flag.Duration("dial-window", 10*time.Second, "per-attempt connect retry window (capped exponential backoff)")
	totalWindow := flag.Duration("total-window", 0, "give up after this much consecutive disconnection (0: retry forever)")
	opsAddr := flag.String("ops-addr", "", "operations listener (pprof + /metrics) address; empty disables")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)

	reg := telemetry.NewRegistry()
	dialFailures := reg.Counter("fusion_workerd_dial_failures_total",
		"Connect attempts to the coordinator that exhausted their retry window.")
	sessions := reg.Counter("fusion_workerd_sessions_total",
		"Served coordinator sessions (welcome received and worker loop entered).")
	redials := reg.Counter("fusion_workerd_redials_total",
		"Sessions that ended abnormally and triggered a re-dial.")

	if *opsAddr != "" {
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("GET /debug/pprof/", pprof.Index)
		opsMux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		opsMux.Handle("GET /metrics", reg.Handler())
		go func() {
			logger.Info("ops listener serving", "addr", *opsAddr)
			if err := http.ListenAndServe(*opsAddr, opsMux); err != nil {
				logger.Error("ops listener failed", "addr", *opsAddr, "err", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// The dial loop and the signal handler exchange the live worker via
	// mu; stopping covers the window where a signal lands while a dial is
	// still in flight (the fresh worker is shut down as soon as it is
	// published).
	var (
		mu       sync.Mutex
		worker   *scplib.ClusterWorker
		stopping atomic.Bool
	)
	done := make(chan error, 1)
	go func() {
		lastServed := time.Now()
		attempt := 0
		lastNode := -1
		for {
			attempt++
			w, err := scplib.DialCluster(*connect, *dialWindow, registry())
			if stopping.Load() {
				if err == nil {
					w.Shutdown()
				}
				done <- nil
				return
			}
			if err != nil {
				dialFailures.Inc()
				if *totalWindow > 0 && time.Since(lastServed) > *totalWindow {
					done <- err
					return
				}
				logger.Warn("dial failed — retrying",
					"coordinator", *connect, "attempt", attempt,
					"backoff_window", dialWindow.String(), "node", lastNode,
					"err", err)
				continue
			}
			mu.Lock()
			worker = w
			mu.Unlock()
			sessions.Inc()
			lastNode = w.Node()
			logger.Info("serving", "coordinator", *connect, "node", w.Node())
			err = w.Run()
			lastServed = time.Now()
			if err == nil || stopping.Load() {
				// Orderly shutdown (local signal or coordinator bye).
				done <- nil
				return
			}
			redials.Inc()
			logger.Warn("session ended — re-dialing",
				"coordinator", *connect, "node", lastNode,
				"attempt", attempt, "backoff_window", dialWindow.String(),
				"err", err)
		}
	}()

	select {
	case <-stop:
		logger.Info("signal — shutting down")
		stopping.Store(true)
		mu.Lock()
		w := worker
		mu.Unlock()
		if w != nil {
			w.Shutdown()
		}
		<-done
	case err := <-done:
		if err != nil && !errors.Is(err, scplib.ErrStopped) {
			logger.Error("terminal failure", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("stopped")
}
