// fusiond serves the resilient fusion pipeline as a long-running,
// multi-job HTTP service: one persistent worker pool handles many
// concurrent cubes, with admission control and a content-addressed result
// cache (see internal/service).
//
//	go run ./cmd/fusiond -addr :8080 -workers 8 -concurrency 4
//
//	POST /v1/jobs        HSIC cube body; options via query params
//	                     (granularity, prefetch, threshold, components)
//	GET  /v1/jobs/{id}   status and result (?image=1 adds base64 PNG)
//	GET  /v1/stats       queue depth, cache hit rate, throughput
//	GET  /metrics        Prometheus text exposition (also on -ops-addr)
//
// Whole-scene streaming fusion (ENVI BIL/BSQ/BIP rasters, spooled to
// disk and fused tile-by-tile — see internal/scene):
//
//	POST   /v1/scenes               multipart upload: "header" (.hdr
//	                                text) then "data" (raw payload)
//	GET    /v1/scenes[/{id}]        registry listing / scene info
//	POST   /v1/scenes/{id}/fuse     fuse with per-tile progress
//	GET    /v1/scenes/{id}/result   latest composite as image/png
//	DELETE /v1/scenes/{id}          unregister and delete the spool
//
// The same pool is also served as the v2 resource API — JSON option
// bodies, structured {"error": {"code", "message"}} envelope, GET
// /v2/jobs listing, long-poll GET /v2/jobs/{id}?wait=30s,
// content-negotiated GET /v2/jobs/{id}/result, and the stage-span
// timeline GET /v2/jobs/{id}/trace — documented in docs/openapi.yaml
// and wrapped by the fusionclient SDK and the fusionctl CLI.
//
// Durable mode (-spool /var/fusion/spool -journal /var/fusion/journal)
// persists the scene catalog and a write-ahead job journal so scenes
// and in-flight jobs survive a crash: on restart, queued jobs re-enter
// the queue, running jobs re-run (or resolve from the result cache),
// and job IDs keep counting from where they left off.
// -cache-spill-mb spills evicted result-cache entries to
// content-addressed files under the journal dir instead of dropping
// them. See the README's "durability" section.
//
// Cluster mode (-cluster :9310 -cluster-workers 3) runs each job's
// worker replicas in remote fusionworkerd processes instead of local
// goroutines, with the resilient guardian regenerating replicas lost to
// killed workers; below quorum, jobs silently degrade to the in-process
// pool with a bit-identical mosaic. See the README's "cluster mode"
// section for topology and failure semantics.
//
// Logs are structured (log/slog): -log-format text|json, -log-level
// debug|info|warn|error. -ops-addr opens a separate operations listener
// with net/http/pprof under /debug/pprof/ and a second /metrics mount,
// so profiling and scraping can stay off the public API port.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilientfusion/internal/linalg"
	"resilientfusion/internal/service"
	"resilientfusion/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	opsAddr := flag.String("ops-addr", "", "operations listener (pprof + /metrics) address; empty disables")
	workers := flag.Int("workers", linalg.MaxWorkers(), "persistent fusion workers in the pool")
	concurrency := flag.Int("concurrency", 0, "jobs running at once (0: workers/2, min 1)")
	queue := flag.Int("queue", 64, "queued jobs beyond the running ones")
	cacheEntries := flag.Int("cache", 128, "result cache capacity (negative disables)")
	spool := flag.String("spool", "", "scene spool directory (default: a fresh temp dir, removed on exit)")
	journal := flag.String("journal", "", "durable control plane directory (job journal + cube spool + cache spill); requires -spool")
	cacheSpillMB := flag.Int64("cache-spill-mb", 0, "disk budget in MiB for evicted result-cache entries (0 disables; requires -journal)")
	maxSceneMB := flag.Int64("max-scene-mb", 512, "largest registrable scene payload in MiB")
	maxScenes := flag.Int("max-scenes", 64, "concurrently registered scenes")
	maxWait := flag.Duration("max-wait", 60*time.Second, "cap on one v2 long-poll request")
	clusterListen := flag.String("cluster", "", "cluster mode: listen address for fusionworkerd connections (e.g. :9310)")
	clusterWorkers := flag.Int("cluster-workers", 2, "expected fusionworkerd processes (overrides -workers in cluster mode)")
	clusterReplication := flag.Int("cluster-replication", 2, "replicas per logical worker in cluster mode")
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 250*time.Millisecond, "replica heartbeat period in cluster mode")
	clusterFail := flag.Duration("cluster-fail-timeout", time.Second, "silence window before a replica is declared failed")
	clusterReissue := flag.Duration("cluster-reissue", 5*time.Second, "manager per-request timeout before lost work is reissued")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	verbose := flag.Bool("v", false, "log thread diagnostics (alias for -log-level debug)")
	flag.Parse()

	if *verbose {
		*logLevel = "debug"
	}
	logger := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)

	// A journal without a pinned spool would persist the catalog inside a
	// temp dir that Close removes — every restart would boot empty and
	// sweep nothing, silently defeating the durability the flag promises.
	if *journal != "" && *spool == "" {
		logger.Error("-journal requires -spool (a temp spool is removed on exit, taking the scene catalog with it)")
		os.Exit(2)
	}

	if *clusterListen != "" {
		// Cluster mode pins the pool width to the fleet size (the service
		// would force it anyway); reflecting it here keeps the startup log
		// and the derived concurrency default consistent.
		*workers = *clusterWorkers
	}
	if *concurrency <= 0 {
		*concurrency = max(1, *workers/2)
	}
	cfg := service.Config{
		Workers:       *workers,
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		CacheEntries:  *cacheEntries,
		SpoolDir:      *spool,
		JournalDir:    *journal,
		CacheSpillBytes: func() int64 {
			if *cacheSpillMB < 0 {
				return 0
			}
			return *cacheSpillMB << 20
		}(),
		MaxSceneBytes: *maxSceneMB << 20,
		MaxScenes:     *maxScenes,
		MaxLongPoll:   *maxWait,
		Logger:        logger,
	}
	if *clusterListen != "" {
		cfg.Cluster = &service.ClusterConfig{
			Listen:          *clusterListen,
			Workers:         *clusterWorkers,
			Replication:     *clusterReplication,
			HeartbeatPeriod: clusterHeartbeat.Seconds(),
			FailTimeout:     clusterFail.Seconds(),
			ReissueTimeout:  clusterReissue.Seconds(),
		}
	}
	pool, err := service.NewPool(cfg)
	if err != nil {
		logger.Error("pool construction failed", "err", err)
		os.Exit(1)
	}
	if rep := pool.Recovery(); rep != nil {
		logger.Info("durable control plane recovered", "journal", *journal, "report", rep.String())
	}

	if *opsAddr != "" {
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("GET /debug/pprof/", pprof.Index)
		opsMux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		opsMux.Handle("GET /metrics", pool.Metrics().Handler())
		go func() {
			logger.Info("ops listener serving", "addr", *opsAddr)
			if err := http.ListenAndServe(*opsAddr, opsMux); err != nil {
				logger.Error("ops listener failed", "addr", *opsAddr, "err", err)
			}
		}()
	}

	// Request contexts derive from baseCtx so shutdown can release
	// handlers parked in v2 long-polls: they return the current job
	// snapshot immediately instead of holding the drain open for up to
	// -max-wait.
	baseCtx, releaseWaiters := context.WithCancel(context.Background())
	srv := &http.Server{
		Addr:        *addr,
		Handler:     pool.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	go func() {
		logger.Info("serving",
			"addr", *addr, "workers", *workers,
			"concurrency", *concurrency, "queue", *queue)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			logger.Error("http server failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("draining")
	releaseWaiters()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := pool.Close(); err != nil {
		logger.Warn("pool close", "err", err)
	}
	logger.Info("stopped")
}
