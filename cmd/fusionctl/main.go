// fusionctl is the command-line client for the fusion service's v2 API,
// built on the fusionclient SDK.
//
//	fusionctl [-addr http://localhost:8080] <command> [flags] [args]
//
// Commands:
//
//	submit <cube.hsic>         submit an HSIC cube for fusion
//	                           (-granularity, -prefetch, -threshold,
//	                           -components, -parallelism, -algorithm;
//	                           -wait blocks until the job is terminal)
//	status <job-id>            print a job resource
//	wait   <job-id>            long-poll a job to its terminal state
//	                           (-timeout bounds the wait client-side)
//	cancel <job-id>            withdraw a queued job
//	jobs                       list jobs (-state, -limit)
//	result <job-id>            fetch a result: -o writes the composite
//	                           PNG, otherwise the JSON summary prints
//	scenes                     list registered scenes
//	scenes register <path>     upload an ENVI scene (header or data path)
//	scenes fuse <scene-id>     fuse a registered scene (same option
//	                           flags as submit; -wait blocks)
//	scenes rm <scene-id>       unregister a scene
//	stats                      print pool counters
//
// The service address can also come from the FUSIOND_ADDR environment
// variable; the -addr flag wins.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"resilientfusion/fusionclient"
	"resilientfusion/internal/scene"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fusionctl: ")

	addr := flag.String("addr", defaultAddr(), "fusion service base URL (or FUSIOND_ADDR)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	client := fusionclient.New(*addr)
	ctx := context.Background()

	var err error
	switch cmd := args[0]; cmd {
	case "submit":
		err = cmdSubmit(ctx, client, args[1:])
	case "status":
		err = cmdStatus(ctx, client, args[1:])
	case "wait":
		err = cmdWait(ctx, client, args[1:])
	case "cancel":
		err = cmdCancel(ctx, client, args[1:])
	case "jobs":
		err = cmdJobs(ctx, client, args[1:])
	case "result":
		err = cmdResult(ctx, client, args[1:])
	case "scenes":
		err = cmdScenes(ctx, client, args[1:])
	case "stats":
		err = cmdStats(ctx, client)
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func defaultAddr() string {
	if v := os.Getenv("FUSIOND_ADDR"); v != "" {
		return v
	}
	return "http://localhost:8080"
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fusionctl [-addr URL] <command> [flags] [args]

commands:
  submit <cube.hsic>       submit an HSIC cube (-threshold, -granularity,
                           -prefetch, -components, -parallelism,
                           -algorithm, -wait)
  status <job-id>          print a job resource
  wait <job-id>            long-poll a job to a terminal state (-timeout)
  cancel <job-id>          withdraw a queued job
  jobs                     list jobs (-state, -limit)
  result <job-id>          fetch a result (-o composite.png for the image)
  scenes                   list registered scenes
  scenes register <path>   upload an ENVI scene (header or data path)
  scenes fuse <scene-id>   fuse a registered scene (option flags + -wait)
  scenes rm <scene-id>     unregister a scene
  stats                    print pool counters`)
}

// optionFlags registers the shared fusion-knob flags on fs and returns a
// builder that yields nil when no knob was set (pool defaults).
func optionFlags(fs *flag.FlagSet) func() *fusionclient.Options {
	granularity := fs.Int("granularity", 0, "sub-cubes = granularity x pool workers")
	prefetch := fs.Int("prefetch", 0, "per-worker sub-problem overlap (-1 disables)")
	threshold := fs.Float64("threshold", 0, "spectral-angle screening threshold (radians)")
	components := fs.Int("components", 0, "principal components retained (min 3)")
	parallelism := fs.Int("parallelism", 0, "per-worker kernel parallelism")
	algorithm := fs.String("algorithm", "", "fusion algorithm (pct, pyramid, dwt)")
	return func() *fusionclient.Options {
		var opts fusionclient.Options
		set := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "granularity":
				opts.Granularity, set = granularity, true
			case "prefetch":
				opts.Prefetch, set = prefetch, true
			case "threshold":
				opts.Threshold, set = threshold, true
			case "components":
				opts.Components, set = components, true
			case "parallelism":
				opts.Parallelism, set = parallelism, true
			case "algorithm":
				opts.Algorithm, set = algorithm, true
			}
		})
		if !set {
			return nil
		}
		return &opts
	}
}

func printJob(job *fusionclient.Job) {
	fmt.Printf("%s  state=%s", job.ID, job.State)
	if job.SceneID != "" {
		fmt.Printf("  scene=%s", job.SceneID)
	}
	if job.CacheHit {
		fmt.Printf("  cache_hit")
	}
	if job.Progress != nil {
		fmt.Printf("  tiles=%d/%d", job.Progress.Transformed, job.Progress.Total)
	}
	if job.Options != nil {
		o := job.Options
		fmt.Printf("  [w=%d g=%d t=%g c=%d", o.Workers, o.Granularity, o.Threshold, o.Components)
		if o.Algorithm != "" && o.Algorithm != "pct" {
			fmt.Printf(" alg=%s", o.Algorithm)
		}
		fmt.Printf("]")
	}
	if job.Result != nil {
		fmt.Printf("  K=%d sub_cubes=%d", job.Result.UniqueSetSize, job.Result.SubCubes)
	}
	if job.Error != "" {
		fmt.Printf("  error=%q", job.Error)
	}
	fmt.Println()
}

func cmdSubmit(ctx context.Context, client *fusionclient.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	buildOpts := optionFlags(fs)
	wait := fs.Bool("wait", false, "block until the job is terminal")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("submit needs exactly one cube path, got %d args", fs.NArg())
	}
	// The HSIC bytes stream straight from disk onto the wire; the
	// service validates the encoding.
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	job, err := client.SubmitHSIC(ctx, f, buildOpts())
	if err != nil {
		return err
	}
	if *wait && !job.Terminal() {
		if job, err = client.Wait(ctx, job.ID); err != nil {
			return err
		}
	}
	printJob(job)
	return nil
}

func cmdStatus(ctx context.Context, client *fusionclient.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("status needs exactly one job ID")
	}
	job, err := client.Job(ctx, args[0])
	if err != nil {
		return err
	}
	printJob(job)
	return nil
}

func cmdWait(ctx context.Context, client *fusionclient.Client, args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "client-side bound on the wait (0: none)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("wait needs exactly one job ID")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	job, err := client.Wait(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	printJob(job)
	if job.State == fusionclient.StateFailed {
		os.Exit(1)
	}
	return nil
}

func cmdCancel(ctx context.Context, client *fusionclient.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("cancel needs exactly one job ID")
	}
	job, err := client.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	printJob(job)
	return nil
}

func cmdJobs(ctx context.Context, client *fusionclient.Client, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	state := fs.String("state", "", "filter by state (queued, running, done, failed, canceled)")
	limit := fs.Int("limit", 0, "bound the listing (0: server default)")
	fs.Parse(args)
	jobs, err := client.Jobs(ctx, fusionclient.JobState(*state), *limit)
	if err != nil {
		return err
	}
	for i := range jobs {
		printJob(&jobs[i])
	}
	return nil
}

func cmdResult(ctx context.Context, client *fusionclient.Client, args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	out := fs.String("o", "", "write the composite PNG here (otherwise print the JSON summary)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("result needs exactly one job ID")
	}
	id := fs.Arg(0)
	if *out != "" {
		data, err := client.ResultPNG(ctx, id)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
		return nil
	}
	sum, err := client.Result(ctx, id)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

func cmdScenes(ctx context.Context, client *fusionclient.Client, args []string) error {
	if len(args) == 0 {
		scenes, err := client.Scenes(ctx)
		if err != nil {
			return err
		}
		for _, s := range scenes {
			fmt.Printf("%s  %dx%dx%d %s  %d bytes  last_done=%s\n",
				s.ID, s.Width, s.Height, s.Bands, s.Interleave, s.Bytes, orDash(s.LastDoneJob))
		}
		return nil
	}
	switch sub := args[0]; sub {
	case "register":
		if len(args) != 2 {
			return fmt.Errorf("scenes register needs exactly one ENVI path")
		}
		hdrText, err := os.ReadFile(scene.HeaderPath(args[1]))
		if err != nil {
			return err
		}
		raw, err := os.Open(scene.DataPath(args[1]))
		if err != nil {
			return err
		}
		defer raw.Close()
		info, err := client.RegisterScene(ctx, string(hdrText), raw)
		if err != nil {
			return err
		}
		fmt.Printf("%s  %dx%dx%d %s  digest=%.12s\n",
			info.ID, info.Width, info.Height, info.Bands, info.Interleave, info.Digest)
		return nil
	case "fuse":
		fs := flag.NewFlagSet("scenes fuse", flag.ExitOnError)
		buildOpts := optionFlags(fs)
		wait := fs.Bool("wait", false, "block until the fusion is terminal")
		fs.Parse(args[1:])
		if fs.NArg() != 1 {
			return fmt.Errorf("scenes fuse needs exactly one scene ID")
		}
		job, err := client.FuseScene(ctx, fs.Arg(0), buildOpts())
		if err != nil {
			return err
		}
		if *wait && !job.Terminal() {
			if job, err = client.Wait(ctx, job.ID); err != nil {
				return err
			}
		}
		printJob(job)
		return nil
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("scenes rm needs exactly one scene ID")
		}
		return client.RemoveScene(ctx, args[1])
	default:
		return fmt.Errorf("unknown scenes subcommand %q (valid: register, fuse, rm)", sub)
	}
}

func cmdStats(ctx context.Context, client *fusionclient.Client) error {
	st, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("workers=%d running=%d queued=%d\n", st.Workers, st.Running, st.QueueDepth)
	fmt.Printf("submitted=%d completed=%d failed=%d rejected=%d\n",
		st.Submitted, st.Completed, st.Failed, st.Rejected)
	fmt.Printf("cache: %d hits, %d misses, %d entries\n", st.CacheHits, st.CacheMisses, st.CacheSize)
	fmt.Printf("throughput=%.2f jobs/s over %.0fs\n", st.Throughput, st.UptimeSeconds)
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
