// Command fusionlint is the repository's invariant checker: a
// multichecker of four repo-specific analyzers built on internal/lint
// (a stdlib-only go/analysis equivalent):
//
//	detsource  — no nondeterminism sources in the deterministic packages
//	shardgrid  — runtime.GOMAXPROCS/NumCPU only in linalg/parfor.go
//	apierror   — service errors only through apierror.go's registry
//	telemetry  — library diagnostics through the injected logger, metric
//	             names in the fusion_<subsystem>_<name>[_unit] scheme
//
// The enforced invariants are documented in docs/invariants.md.
//
// Standalone (the required CI step):
//
//	go run ./cmd/fusionlint ./...
//
// As a vet tool, for editor/toolchain integration:
//
//	go install ./cmd/fusionlint
//	go vet -vettool=$(go env GOPATH)/bin/fusionlint ./...
//
// Exit status: 0 clean, 1 tool failure, 2 findings.
package main

import (
	"fmt"
	"os"
	"strings"

	"resilientfusion/internal/lint"
	"resilientfusion/internal/lint/apierror"
	"resilientfusion/internal/lint/detsource"
	"resilientfusion/internal/lint/shardgrid"
	telemetrylint "resilientfusion/internal/lint/telemetry"
)

var analyzers = []*lint.Analyzer{
	detsource.Analyzer,
	shardgrid.Analyzer,
	apierror.Analyzer,
	telemetrylint.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// `go vet` probes the tool twice before use: -V=full for the build
	// cache key, -flags for the JSON description of tool flags (none).
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Println("fusionlint version v1")
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	// `go vet -vettool` invokes the tool once per compilation unit with
	// the unit's config file as the sole argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := lint.RunVetTool(args[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusionlint:", err)
			return 1
		}
		return report(diags)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	need := func(path string) bool {
		for _, a := range analyzers {
			if a.Applies == nil || a.Applies(path) {
				return true
			}
		}
		return false
	}
	pkgs, err := lint.Load(".", patterns, need)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusionlint:", err)
		return 1
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusionlint:", err)
			return 1
		}
		all = append(all, diags...)
	}
	return report(all)
}

func report(diags []lint.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	fmt.Fprintf(os.Stderr, "fusionlint: %d finding(s)\n", len(diags))
	return 2
}
