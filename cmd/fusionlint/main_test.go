package main

import "testing"

// The go command probes a vettool with -V=full and -flags before
// trusting it; both must short-circuit cleanly or `go vet -vettool`
// dies before analyzing anything.
func TestVetProtocolProbes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Fatalf("run(-flags) = %d, want 0", got)
	}
}

func TestEveryAnalyzerRegistered(t *testing.T) {
	want := map[string]bool{"detsource": true, "shardgrid": true, "apierror": true, "telemetry": true}
	for _, a := range analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
		if a.Run == nil || a.Applies == nil || a.Doc == "" {
			t.Errorf("analyzer %q incompletely wired", a.Name)
		}
	}
	for name := range want {
		t.Errorf("analyzer %q not registered", name)
	}
}
