// Command hydicegen generates synthetic HYDICE-like hyper-spectral cubes
// and stores them in the repository's HSIC binary format — or as an
// ENVI-style scene (raw payload + text header) for the streaming scene
// pipeline — standing in for the proprietary sensor data the paper used.
//
//	hydicegen -out scene.hsic [-width 320 -height 320 -bands 210 -seed 1]
//	hydicegen -out scene.raw -envi bil    writes scene.raw + scene.raw.hdr
package main

import (
	"flag"
	"log"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hydicegen: ")
	var (
		out    = flag.String("out", "scene.hsic", "output file")
		width  = flag.Int("width", 320, "width in pixels")
		height = flag.Int("height", 320, "height in pixels")
		bands  = flag.Int("bands", 210, "spectral bands")
		seed   = flag.Int64("seed", 1, "generator seed")
		noise  = flag.Float64("noise", 6, "sensor noise sigma (counts)")
		envi   = flag.String("envi", "", "write an ENVI scene in this interleave (bil, bsq or bip) instead of HSIC")
	)
	flag.Parse()

	spec := hsi.DefaultSceneSpec()
	spec.Width, spec.Height, spec.Bands = *width, *height, *bands
	spec.Seed, spec.NoiseSigma = *seed, *noise
	sc, err := hsi.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	switch *envi {
	case "":
		if err := sc.Cube.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
	case "bil", "bsq", "bip":
		if err := scene.Write(*out, sc.Cube, scene.Interleave(*envi)); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown interleave %q (want bil, bsq or bip)", *envi)
	}
	log.Printf("wrote %s: %s (%d material classes, %.1f MB)",
		*out, sc.Cube, len(hsi.Materials()), float64(sc.Cube.EncodedSize())/(1<<20))
}
