// Command hydicegen generates synthetic HYDICE-like hyper-spectral cubes
// and stores them in the repository's HSIC binary format, standing in for
// the proprietary sensor data the paper used.
//
//	hydicegen -out scene.hsic [-width 320 -height 320 -bands 210 -seed 1]
package main

import (
	"flag"
	"log"

	"resilientfusion/internal/hsi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hydicegen: ")
	var (
		out    = flag.String("out", "scene.hsic", "output file")
		width  = flag.Int("width", 320, "width in pixels")
		height = flag.Int("height", 320, "height in pixels")
		bands  = flag.Int("bands", 210, "spectral bands")
		seed   = flag.Int64("seed", 1, "generator seed")
		noise  = flag.Float64("noise", 6, "sensor noise sigma (counts)")
	)
	flag.Parse()

	spec := hsi.DefaultSceneSpec()
	spec.Width, spec.Height, spec.Bands = *width, *height, *bands
	spec.Seed, spec.NoiseSigma = *seed, *noise
	scene, err := hsi.GenerateScene(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := scene.Cube.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %s (%d material classes, %.1f MB)",
		*out, scene.Cube, len(hsi.Materials()), float64(scene.Cube.EncodedSize())/(1<<20))
}
