// Package fusionclient is the typed Go SDK for the fusion service's v2
// resource API (internal/service, served by cmd/fusiond).
//
// It wraps the whole job lifecycle behind typed calls — SubmitCube,
// RegisterScene (streaming multipart), FuseScene, Wait (server-side
// long-poll, no status-poll loops), Jobs, ResultPNG — with service
// failures round-tripped as *APIError carrying the API's stable
// machine-readable codes:
//
//	client := fusionclient.New("http://localhost:8080")
//	job, err := client.SubmitCube(ctx, cube,
//		&fusionclient.Options{Threshold: fusionclient.Float(0.05)})
//	if err != nil { ... }
//	job, err = client.Wait(ctx, job.ID)
//	png, err := client.ResultPNG(ctx, job.ID)
package fusionclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"resilientfusion/internal/hsi"
)

// Client talks to one fusion service. The zero value is not usable;
// construct with New. A Client is safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	longPoll time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (the default is
// http.DefaultClient; do not set a Timeout shorter than the long-poll
// window or Wait will spuriously fail).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithLongPoll sets the per-request long-poll window Wait asks the
// server for (default 30s; the server trims to its own cap and Wait
// simply re-issues, so larger values only reduce request count).
func WithLongPoll(d time.Duration) ClientOption {
	return func(c *Client) { c.longPoll = d }
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       http.DefaultClient,
		longPoll: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues the request and decodes a 2xx JSON body into out (skipped
// when out is nil); non-2xx responses become *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// SubmitCube submits an in-memory cube for fusion, streaming the HSIC
// encoding as a multipart body alongside the options JSON, and returns
// the accepted job (already terminal on a result-cache hit).
func (c *Client) SubmitCube(ctx context.Context, cube *hsi.Cube, opts *Options) (*Job, error) {
	return c.submit(ctx, opts, func(w io.Writer) error {
		_, err := cube.WriteTo(w)
		return err
	})
}

// SubmitHSIC is SubmitCube for callers holding the HSIC encoding rather
// than a cube value (a .hsic file, bytes from another service): the
// reader streams straight onto the wire. This is the entrypoint that
// needs nothing beyond this package's types.
func (c *Client) SubmitHSIC(ctx context.Context, hsic io.Reader, opts *Options) (*Job, error) {
	return c.submit(ctx, opts, func(w io.Writer) error {
		_, err := io.Copy(w, hsic)
		return err
	})
}

func (c *Client) submit(ctx context.Context, opts *Options, writeCube func(io.Writer) error) (*Job, error) {
	var job Job
	err := c.postMultipart(ctx, "/v2/jobs", &job, func(mw *multipart.Writer) error {
		if opts != nil {
			ow, err := mw.CreateFormField("options")
			if err != nil {
				return err
			}
			if err := json.NewEncoder(ow).Encode(opts); err != nil {
				return err
			}
		}
		cw, err := mw.CreateFormFile("cube", "cube.hsic")
		if err != nil {
			return err
		}
		return writeCube(cw)
	})
	if err != nil {
		return nil, err
	}
	return &job, nil
}

// postMultipart streams a multipart body written by writeParts onto the
// wire through an io.Pipe (nothing buffers in memory) and decodes the
// 2xx JSON response into out.
func (c *Client) postMultipart(ctx context.Context, path string, out any, writeParts func(*multipart.Writer) error) error {
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	// Build the request before spawning the writer: a bad base URL must
	// not strand a goroutine blocked on an unread pipe.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, pr)
	if err != nil {
		pw.Close()
		pr.Close()
		return err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	go func() {
		err := writeParts(mw)
		if err == nil {
			err = mw.Close()
		}
		pw.CloseWithError(err)
	}()
	return c.do(req, out)
}

// Job fetches a job's current resource.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.get(ctx, "/v2/jobs/"+url.PathEscape(id), &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Cancel withdraws a queued job (DELETE /v2/jobs/{id}) and returns the
// canceled resource. Jobs already running or finished come back as an
// *APIError with code "job_not_cancelable".
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v2/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	var job Job
	if err := c.do(req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// using server-side long-polls (GET /v2/jobs/{id}?wait=...) instead of a
// status-poll loop: each request parks on the server until the job
// finishes or the window elapses, then Wait re-issues. The client-side
// deadline is whatever ctx carries.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	for {
		window := c.longPoll
		if dl, ok := ctx.Deadline(); ok {
			// Ask the server for no more than the time this caller has
			// left, so the final response still reaches them in time.
			if rem := time.Until(dl); rem < window {
				window = rem
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if window <= 0 {
			// The deadline has lapsed even if the context's timer has
			// not fired yet; never return (nil, nil).
			return nil, context.DeadlineExceeded
		}
		var job Job
		start := time.Now()
		err := c.get(ctx, "/v2/jobs/"+url.PathEscape(id)+"?wait="+window.String(), &job)
		if err != nil {
			return nil, err
		}
		if job.Terminal() {
			return &job, nil
		}
		// A non-terminal answer far sooner than the window means the
		// server is not honoring long-polls (draining, or a proxy that
		// strips the park) — pace the retry instead of hammering it.
		if elapsed := time.Since(start); elapsed < window/2 && elapsed < time.Second {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Second):
			}
		}
	}
}

// Jobs lists the service's retained jobs, newest first. state "" lists
// every state; limit <= 0 takes the server default.
func (c *Client) Jobs(ctx context.Context, state JobState, limit int) ([]Job, error) {
	q := url.Values{}
	if state != "" {
		q.Set("state", string(state))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v2/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Jobs []Job `json:"jobs"`
	}
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Result fetches a finished job's scalar result summary.
func (c *Client) Result(ctx context.Context, id string) (*ResultSummary, error) {
	var sum ResultSummary
	if err := c.get(ctx, "/v2/jobs/"+url.PathEscape(id)+"/result", &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// ResultPNG fetches a finished job's composite image as PNG bytes via
// the result endpoint's content negotiation.
func (c *Client) ResultPNG(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "image/png")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		return nil, fmt.Errorf("fusionclient: result content type %q, want image/png", ct)
	}
	return io.ReadAll(resp.Body)
}

// RegisterScene uploads an ENVI scene — header text plus the raw
// payload read from data — through the streaming multipart endpoint. The
// payload is piped straight onto the wire (and spooled to disk server
// side), so scenes larger than memory upload fine.
func (c *Client) RegisterScene(ctx context.Context, headerText string, data io.Reader) (*SceneInfo, error) {
	var info SceneInfo
	err := c.postMultipart(ctx, "/v2/scenes", &info, func(mw *multipart.Writer) error {
		hw, err := mw.CreateFormField("header")
		if err != nil {
			return err
		}
		if _, err := io.WriteString(hw, headerText); err != nil {
			return err
		}
		dw, err := mw.CreateFormFile("data", "scene.raw")
		if err != nil {
			return err
		}
		_, err = io.Copy(dw, data)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// Scenes lists registered scenes in registration order.
func (c *Client) Scenes(ctx context.Context) ([]SceneInfo, error) {
	var out struct {
		Scenes []SceneInfo `json:"scenes"`
	}
	if err := c.get(ctx, "/v2/scenes", &out); err != nil {
		return nil, err
	}
	return out.Scenes, nil
}

// Scene fetches one registered scene's snapshot.
func (c *Client) Scene(ctx context.Context, id string) (*SceneInfo, error) {
	var info SceneInfo
	if err := c.get(ctx, "/v2/scenes/"+url.PathEscape(id), &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// RemoveScene unregisters a scene and deletes its server-side spool.
// Already-accepted fusions of it still complete.
func (c *Client) RemoveScene(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v2/scenes/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// FuseScene enqueues a whole-scene fusion of a registered scene and
// returns the accepted job (terminal immediately on a cache hit). The
// job streams the scene tile-by-tile server-side and reports per-tile
// progress in Job.Progress.
func (c *Client) FuseScene(ctx context.Context, id string, opts *Options) (*Job, error) {
	var body bytes.Buffer
	if opts != nil {
		if err := json.NewEncoder(&body).Encode(opts); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v2/scenes/"+url.PathEscape(id)+"/fuse", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var job Job
	if err := c.do(req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Trace fetches a job's recorded stage-span timeline (ingest, screen,
// covariance, eigen, transform, merge, plus detection/regeneration
// events in cluster mode). A job that has not started yet, or was
// served entirely from the result cache, reports an empty span list.
func (c *Client) Trace(ctx context.Context, id string) (*JobTrace, error) {
	var tr JobTrace
	if err := c.get(ctx, "/v2/jobs/"+url.PathEscape(id)+"/trace", &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Stats fetches the pool's counter snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.get(ctx, "/v2/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}
