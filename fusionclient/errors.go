package fusionclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Stable machine-readable error codes of the v2 API, mirrored from the
// service contract (a parity test in the service repo pins the two
// lists together). Branch on these via ErrorCode or errors.As:
//
//	var apiErr *fusionclient.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == fusionclient.CodeQueueFull {
//		// back off and resubmit
//	}
const (
	CodeBadOption        = "bad_option"
	CodeBadPayload       = "bad_payload"
	CodePayloadTooLarge  = "payload_too_large"
	CodeQueueFull        = "queue_full"
	CodePoolClosed       = "pool_closed"
	CodeUnknownJob       = "unknown_job"
	CodeUnknownScene     = "unknown_scene"
	CodeSceneLimit       = "scene_limit"
	CodeNoSceneResult    = "no_scene_result"
	CodeImageExpired     = "image_expired"
	CodeJobNotCancelable = "job_not_cancelable"
	CodeJobNotFinished   = "job_not_finished"
	CodeJobFailed        = "job_failed"
	CodeInternal         = "internal"
)

// APIError is a structured service error, round-tripped from the v2
// envelope {"error": {"code", "message"}}.
type APIError struct {
	// Code is one of the stable Code* values (empty when the server
	// response carried no envelope — a proxy error page, for instance).
	Code string
	// Message is the human-readable failure description.
	Message string
	// HTTPStatus is the response status the envelope arrived with.
	HTTPStatus int
	// RetryAfter is the server's backoff hint, parsed from the
	// Retry-After header (zero when absent). The service sends it with
	// queue_full rejections.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("fusion service: HTTP %d: %s", e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("fusion service: %s (%s)", e.Message, e.Code)
}

// ErrorCode extracts the stable code from an error chain, or "" when the
// error is not a structured service error.
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// decodeError turns a non-2xx response into an *APIError, preferring the
// v2 envelope and degrading gracefully for bodies that are not one.
func decodeError(resp *http.Response) error {
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &APIError{Code: env.Error.Code, Message: env.Error.Message,
			HTTPStatus: resp.StatusCode, RetryAfter: retryAfter}
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return &APIError{Message: msg, HTTPStatus: resp.StatusCode, RetryAfter: retryAfter}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form the service emits); malformed or absent values yield zero.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
