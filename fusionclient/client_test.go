package fusionclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"image/png"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilientfusion/internal/hsi"
	"resilientfusion/internal/scene"
	"resilientfusion/internal/service"
)

// startService spins up a real pool behind an httptest server and
// returns a client for it — every test drives the SDK against the
// actual wire contract, not a mock.
func startService(t *testing.T, cfg service.Config) (*Client, *service.Pool) {
	t.Helper()
	pool, err := service.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pool.Handler())
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
	})
	return New(srv.URL, WithHTTPClient(srv.Client())), pool
}

func testCube(t *testing.T, seed int64) *hsi.Cube {
	t.Helper()
	s, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 24, Height: 24, Bands: 8, Seed: seed,
		NoiseSigma: 3, Illumination: 0.1,
		OpenVehicles: 1, CamouflagedVehicles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Cube
}

// TestSubmitWaitResult is the SDK happy path: submit, wait via
// server-side long-poll, inspect canonical options, fetch both result
// forms, list jobs, read stats.
func TestSubmitWaitResult(t *testing.T) {
	client, _ := startService(t, service.Config{Workers: 2, MaxConcurrent: 2})
	ctx := context.Background()
	cube := testCube(t, 11)

	job, err := client.SubmitCube(ctx, cube, &Options{Threshold: Float(0.05), Granularity: Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatal("no job id")
	}
	job, err = client.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("state %s (error %q)", job.State, job.Error)
	}
	if job.Result == nil || job.Result.UniqueSetSize == 0 || job.Result.PhaseTimes.Total <= 0 {
		t.Fatalf("result summary: %+v", job.Result)
	}
	if o := job.Options; o == nil || o.Threshold != 0.05 || o.Granularity != 3 || o.Workers != 2 {
		t.Fatalf("canonical options echo: %+v", o)
	}

	sum, err := client.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.UniqueSetSize != job.Result.UniqueSetSize || len(sum.Eigenvalues) == 0 {
		t.Fatalf("summary %+v vs job result %+v", sum, job.Result)
	}

	data, err := client.ResultPNG(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != cube.Width || b.Dy() != cube.Height {
		t.Errorf("composite %dx%d, cube %dx%d", b.Dx(), b.Dy(), cube.Width, cube.Height)
	}

	jobs, err := client.Jobs(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Errorf("jobs list: %+v", jobs)
	}
	if jobs, err = client.Jobs(ctx, StateFailed, 0); err != nil || len(jobs) != 0 {
		t.Errorf("failed filter: %v jobs, err=%v", len(jobs), err)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Workers != 2 {
		t.Errorf("stats: %+v", st)
	}

	// Resubmission of the identical cube + options is a cache hit,
	// terminal straight from SubmitCube — no Wait needed. SubmitHSIC
	// hits the same cache entry: the two entrypoints send the same bytes.
	repeat, err := client.SubmitCube(ctx, cube, &Options{Threshold: Float(0.05), Granularity: Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !repeat.CacheHit || repeat.State != StateDone {
		t.Errorf("repeat: state=%s hit=%v", repeat.State, repeat.CacheHit)
	}
	var hsic bytes.Buffer
	if _, err := cube.WriteTo(&hsic); err != nil {
		t.Fatal(err)
	}
	rawRepeat, err := client.SubmitHSIC(ctx, &hsic, &Options{Threshold: Float(0.05), Granularity: Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !rawRepeat.CacheHit || rawRepeat.State != StateDone {
		t.Errorf("SubmitHSIC repeat: state=%s hit=%v", rawRepeat.State, rawRepeat.CacheHit)
	}

	// An explicit zero knob means "pool default", like v1's
	// granularity=0: the echo shows the default, not zero.
	zeroed, err := client.SubmitCube(ctx, cube, &Options{Threshold: Float(0.05), Granularity: Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Options == nil || zeroed.Options.Granularity != 2 {
		t.Errorf("granularity=0 echo: %+v, want default 2", zeroed.Options)
	}
	if _, err := client.Wait(ctx, zeroed.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSceneFlow covers the streaming scene lifecycle through the SDK,
// ending with the scene composite byte-identical to the in-memory
// submission of the same cube (shared content-addressed cache).
func TestSceneFlow(t *testing.T) {
	client, _ := startService(t, service.Config{Workers: 2, MaxConcurrent: 2})
	ctx := context.Background()
	cube := testCube(t, 12)

	// Write the cube as an ENVI BIL scene and upload it streaming.
	dir := t.TempDir()
	rawPath := filepath.Join(dir, "scene.raw")
	if err := scene.Write(rawPath, cube, scene.BIL); err != nil {
		t.Fatal(err)
	}
	hdrText, err := os.ReadFile(rawPath + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.Open(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	info, err := client.RegisterScene(ctx, string(hdrText), raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.Width != cube.Width || info.Height != cube.Height || info.Bands != cube.Bands {
		t.Fatalf("scene info %+v vs cube %v", info, cube)
	}
	scenes, err := client.Scenes(ctx)
	if err != nil || len(scenes) != 1 || scenes[0].ID != info.ID {
		t.Fatalf("scenes list: %+v err=%v", scenes, err)
	}
	if got, err := client.Scene(ctx, info.ID); err != nil || got.Digest != info.Digest {
		t.Fatalf("scene info: %+v err=%v", got, err)
	}

	job, err := client.FuseScene(ctx, info.ID, &Options{Threshold: Float(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if job.SceneID != info.ID {
		t.Fatalf("scene job not tagged: %+v", job)
	}
	job, err = client.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("scene fuse: state %s (error %q)", job.State, job.Error)
	}
	if job.Progress == nil || job.Progress.Transformed != job.Progress.Total || job.Progress.Total == 0 {
		t.Errorf("scene progress: %+v", job.Progress)
	}
	scenePNG, err := client.ResultPNG(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The identical cube through the in-memory path: digest-matched
	// cache hit, byte-identical composite.
	memJob, err := client.SubmitCube(ctx, cube, &Options{Threshold: Float(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if !memJob.Terminal() {
		if memJob, err = client.Wait(ctx, memJob.ID); err != nil {
			t.Fatal(err)
		}
	}
	if !memJob.CacheHit {
		t.Error("in-memory resubmission missed the scene's cache entry")
	}
	memPNG, err := client.ResultPNG(ctx, memJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scenePNG, memPNG) {
		t.Error("scene composite differs from in-memory composite")
	}

	if err := client.RemoveScene(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Scene(ctx, info.ID); ErrorCode(err) != CodeUnknownScene {
		t.Errorf("removed scene lookup: %v", err)
	}
}

// TestTypedErrors pins the satellite guarantee: service failures
// round-trip the HTTP boundary as *APIError with the stable codes.
func TestTypedErrors(t *testing.T) {
	client, _ := startService(t, service.Config{Workers: 2, MaxSceneBytes: 1024})
	ctx := context.Background()

	// Unknown job, via every accessor.
	for name, call := range map[string]func() error{
		"Job":       func() error { _, err := client.Job(ctx, "job-999"); return err },
		"Wait":      func() error { _, err := client.Wait(ctx, "job-999"); return err },
		"Result":    func() error { _, err := client.Result(ctx, "job-999"); return err },
		"ResultPNG": func() error { _, err := client.ResultPNG(ctx, "job-999"); return err },
	} {
		err := call()
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("%s: error %v is not an *APIError", name, err)
		}
		if ae.Code != CodeUnknownJob || ae.HTTPStatus != 404 || ae.Message == "" {
			t.Errorf("%s: %+v", name, ae)
		}
	}

	// Bad option value.
	_, err := client.SubmitCube(ctx, testCube(t, 13), &Options{Threshold: Float(7)})
	if ErrorCode(err) != CodeBadOption {
		t.Errorf("threshold=7: %v (code %q)", err, ErrorCode(err))
	}
	_, err = client.SubmitCube(ctx, testCube(t, 13), &Options{Components: Int(2)})
	if ErrorCode(err) != CodeBadOption {
		t.Errorf("components=2: %v (code %q)", err, ErrorCode(err))
	}

	// Unknown scene.
	if _, err := client.FuseScene(ctx, "scene-999", nil); ErrorCode(err) != CodeUnknownScene {
		t.Errorf("fuse unknown scene: %v", err)
	}
	if err := client.RemoveScene(ctx, "scene-999"); ErrorCode(err) != CodeUnknownScene {
		t.Errorf("remove unknown scene: %v", err)
	}

	// Scene over the pool's byte budget → payload_too_large.
	cube := testCube(t, 14) // 24*24*8*4 = 18432 bytes > 1024
	dir := t.TempDir()
	rawPath := filepath.Join(dir, "big.raw")
	if err := scene.Write(rawPath, cube, scene.BIP); err != nil {
		t.Fatal(err)
	}
	hdrText, err := os.ReadFile(rawPath + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.Open(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_, err = client.RegisterScene(ctx, string(hdrText), raw)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodePayloadTooLarge || ae.HTTPStatus != 413 {
		t.Errorf("oversized scene: %v", err)
	}

	// Truncated payload → bad_payload (a scene small enough to clear
	// the byte budget, cut short on the wire).
	small := &hsi.Cube{Width: 4, Height: 4, Bands: 2, Data: make([]float32, 32)}
	smallPath := filepath.Join(dir, "small.raw")
	if err := scene.Write(smallPath, small, scene.BIP); err != nil {
		t.Fatal(err)
	}
	smallHdr, err := os.ReadFile(smallPath + ".hdr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RegisterScene(ctx, string(smallHdr), bytes.NewReader(make([]byte, 64))); ErrorCode(err) != CodeBadPayload {
		t.Errorf("truncated scene: %v", err)
	}

	// Garbage header → bad_payload (client-caused, not internal).
	if _, err := client.RegisterScene(ctx, "not an envi header", bytes.NewReader(nil)); ErrorCode(err) != CodeBadPayload {
		t.Errorf("garbage header: %v", err)
	}
}

// TestWaitDeadline bounds Wait by the caller's context: waiting on a job
// that cannot finish yet returns the context error, promptly.
func TestWaitDeadline(t *testing.T) {
	client, pool := startService(t, service.Config{
		Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1,
	})
	ctx := context.Background()

	// Wedge the single dispatcher, then queue a second job behind it.
	big, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 256, Height: 256, Bands: 96, Seed: 3,
		NoiseSigma: 6, Illumination: 0.15, OpenVehicles: 3, CamouflagedVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := client.SubmitCube(ctx, big.Cube, &Options{Threshold: Float(0.008)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.SubmitCube(ctx, testCube(t, 15), nil)
	if err != nil {
		t.Fatal(err)
	}

	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Wait(short, queued.ID)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short wait err=%v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("50ms-bounded wait took %v", elapsed)
	}

	// An already-lapsed deadline must surface as an error even before
	// the context's timer fires — never (nil, nil).
	past, cancelPast := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancelPast()
	if job, err := client.Wait(past, queued.ID); err == nil {
		t.Fatalf("lapsed-deadline wait returned job=%v with nil error", job)
	}

	// Both jobs still complete under a patient wait.
	for _, id := range []string{slow.ID, queued.ID} {
		job, err := client.Wait(ctx, id)
		if err != nil || job.State != StateDone {
			t.Fatalf("%s: state=%v err=%v", id, job, err)
		}
	}
	_ = pool
}

// TestAlgorithmAndCancel exercises the two newest SDK surfaces end to
// end: submitting with a non-default fusion algorithm (echoed back in
// canonical form) and canceling a queued job with the typed conflict
// errors on every non-cancelable state.
func TestAlgorithmAndCancel(t *testing.T) {
	client, pool := startService(t, service.Config{
		Workers: 1, MaxConcurrent: 1, QueueDepth: 4, CacheEntries: -1,
	})
	ctx := context.Background()

	if _, err := client.Cancel(ctx, "job-999"); ErrorCode(err) != CodeUnknownJob {
		t.Errorf("cancel unknown job: %v", err)
	}
	if _, err := client.SubmitCube(ctx, testCube(t, 16), &Options{Algorithm: String("median")}); ErrorCode(err) != CodeBadOption {
		t.Errorf("unknown algorithm: %v", err)
	}

	// Wedge the single dispatcher so the pyramid job queues behind it,
	// observable long enough to cancel over HTTP.
	big, err := hsi.GenerateScene(hsi.SceneSpec{
		Width: 256, Height: 256, Bands: 96, Seed: 3,
		NoiseSigma: 6, Illumination: 0.15, OpenVehicles: 3, CamouflagedVehicles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := client.SubmitCube(ctx, big.Cube, &Options{Threshold: Float(0.008)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.SubmitCube(ctx, testCube(t, 17), nil)
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != StateQueued {
		t.Fatalf("expected a queued job behind the wedge, got %s", queued.State)
	}

	canceled, err := client.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled || !canceled.Terminal() || canceled.Finished == nil {
		t.Fatalf("canceled job: %+v", canceled)
	}
	var ae *APIError
	if _, err := client.Cancel(ctx, queued.ID); !errors.As(err, &ae) ||
		ae.Code != CodeJobNotCancelable || ae.HTTPStatus != http.StatusConflict {
		t.Errorf("re-cancel: %v", err)
	}

	// The wedge finishes untouched and is then past canceling too.
	if job, err := client.Wait(ctx, slow.ID); err != nil || job.State != StateDone {
		t.Fatalf("slow job: %+v err=%v", job, err)
	}
	if _, err := client.Cancel(ctx, slow.ID); ErrorCode(err) != CodeJobNotCancelable {
		t.Errorf("cancel done job: %v", err)
	}
	if jobs, err := client.Jobs(ctx, StateCanceled, 0); err != nil || len(jobs) != 1 || jobs[0].ID != queued.ID {
		t.Errorf("canceled filter: %+v err=%v", jobs, err)
	}

	// A non-default algorithm rides the same submit path: canonical echo,
	// terminal completion, and a composite of the cube's dimensions.
	cube := testCube(t, 18)
	job, err := client.SubmitCube(ctx, cube, &Options{Algorithm: String("Pyramid")})
	if err != nil {
		t.Fatal(err)
	}
	if job.Options == nil || job.Options.Algorithm != "pyramid" {
		t.Fatalf("algorithm echo: %+v", job.Options)
	}
	if job, err = client.Wait(ctx, job.ID); err != nil || job.State != StateDone {
		t.Fatalf("pyramid job: %+v err=%v", job, err)
	}
	data, err := client.ResultPNG(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != cube.Width || b.Dy() != cube.Height {
		t.Errorf("pyramid composite %dx%d, cube %dx%d", b.Dx(), b.Dy(), cube.Width, cube.Height)
	}
	_ = pool
}

// TestErrorCodesMatchService pins the SDK's mirrored code constants to
// the service's — the two lists must never drift.
func TestErrorCodesMatchService(t *testing.T) {
	pairs := map[string]string{
		CodeBadOption:        service.CodeBadOption,
		CodeBadPayload:       service.CodeBadPayload,
		CodePayloadTooLarge:  service.CodePayloadTooLarge,
		CodeQueueFull:        service.CodeQueueFull,
		CodePoolClosed:       service.CodePoolClosed,
		CodeUnknownJob:       service.CodeUnknownJob,
		CodeUnknownScene:     service.CodeUnknownScene,
		CodeSceneLimit:       service.CodeSceneLimit,
		CodeNoSceneResult:    service.CodeNoSceneResult,
		CodeImageExpired:     service.CodeImageExpired,
		CodeJobNotCancelable: service.CodeJobNotCancelable,
		CodeJobNotFinished:   service.CodeJobNotFinished,
		CodeJobFailed:        service.CodeJobFailed,
		CodeInternal:         service.CodeInternal,
	}
	for client, svc := range pairs {
		if client != svc {
			t.Errorf("code drift: client %q vs service %q", client, svc)
		}
	}
}

// TestRetryAfterSurfaced pins the queue_full backoff contract: the
// server's Retry-After header arrives as APIError.RetryAfter.
func TestRetryAfterSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"queue_full","message":"job queue full"}}`)
	}))
	defer srv.Close()
	client := New(srv.URL, WithHTTPClient(srv.Client()))

	_, err := client.Job(context.Background(), "job-1")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if ae.Code != CodeQueueFull || ae.RetryAfter != time.Second {
		t.Fatalf("queue_full envelope: %+v", ae)
	}

	for in, want := range map[string]time.Duration{
		"": 0, "junk": 0, "-3": 0, "0": 0, " 2 ": 2 * time.Second,
	} {
		if got := parseRetryAfter(in); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
