package fusionclient

import "time"

// JobState is a job's position in its lifecycle, as reported by the
// service.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Options are the client-settable fusion knobs. Nil fields take the
// pool's defaults (so does an explicit zero — the service treats zero
// as unset, like v1's granularity=0); the canonical values a job
// actually ran with come back in Job.Options. Use the Int and Float
// helpers for literals:
//
//	fusionclient.Options{Threshold: fusionclient.Float(0.05)}
type Options struct {
	// Granularity sets sub-cubes = Granularity × pool workers.
	Granularity *int `json:"granularity,omitempty"`
	// Prefetch is the per-worker sub-problem overlap (-1 disables).
	Prefetch *int `json:"prefetch,omitempty"`
	// Threshold is the spectral-angle screening threshold in radians,
	// in (0, π].
	Threshold *float64 `json:"threshold,omitempty"`
	// Components retained by the PCT (min 3).
	Components *int `json:"components,omitempty"`
	// Parallelism is the per-worker kernel parallelism (result-invariant).
	Parallelism *int `json:"parallelism,omitempty"`
	// Algorithm selects the fusion algorithm by registry name ("pct",
	// "pyramid", "dwt"); nil or empty selects "pct".
	Algorithm *string `json:"algorithm,omitempty"`
}

// Int returns a pointer to v, for Options literals.
func Int(v int) *int { return &v }

// Float returns a pointer to v, for Options literals.
func Float(v float64) *float64 { return &v }

// String returns a pointer to v, for Options literals.
func String(v string) *string { return &v }

// JobOptions is the canonical options echo: every knob the job actually
// ran with, defaults filled in, including the pool-fixed worker count.
type JobOptions struct {
	Workers     int     `json:"workers"`
	Granularity int     `json:"granularity"`
	Prefetch    int     `json:"prefetch"`
	Threshold   float64 `json:"threshold"`
	Components  int     `json:"components"`
	Parallelism int     `json:"parallelism"`
	Algorithm   string  `json:"algorithm"`
}

// TileProgress is a scene job's per-tile pipeline position.
type TileProgress struct {
	Total       int `json:"total"`
	Screened    int `json:"screened"`
	Transformed int `json:"transformed"`
}

// PhaseTimes records when each algorithm phase completed, in runtime
// seconds. Field names mirror the service's JSON (no tags there).
type PhaseTimes struct {
	Screen     float64
	Statistics float64
	Eigen      float64
	Transform  float64
	Total      float64
}

// ResultSummary is a finished job's scalar result (the composite image
// travels separately via ResultPNG).
type ResultSummary struct {
	UniqueSetSize int        `json:"unique_set_size"`
	SubCubes      int        `json:"sub_cubes"`
	Reissues      int        `json:"reissues"`
	CacheMisses   int        `json:"cache_misses"`
	Eigenvalues   []float64  `json:"eigenvalues"`
	PhaseTimes    PhaseTimes `json:"phase_times"`
}

// StageSummary aggregates a job's recorded spans for one stage name:
// how many spans ran and their total duration in seconds.
type StageSummary struct {
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Span is one recorded stage interval in a job's trace timeline. Start
// and End are elapsed seconds since the job's recorder was created.
type Span struct {
	Name  string  `json:"name"`
	Index int     `json:"index"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	// Epoch is the group incarnation for regeneration events (0 otherwise).
	Epoch int `json:"epoch,omitempty"`
	// Note carries free-form detail (e.g. "worker 1 on node 2").
	Note string `json:"note,omitempty"`
}

// JobTrace is a job's full recorded span timeline, the resource behind
// GET /v2/jobs/{id}/trace.
type JobTrace struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	// Spans is the timeline, oldest first; ring overwrites drop the
	// oldest spans and count into Dropped.
	Spans   []Span `json:"spans"`
	Dropped int64  `json:"dropped,omitempty"`
}

// Job is the unified v2 job resource, covering cube and scene fusions.
type Job struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	SceneID  string   `json:"scene_id,omitempty"`
	CacheHit bool     `json:"cache_hit"`
	// Error is the failure message for StateFailed jobs.
	Error string `json:"error,omitempty"`
	// Options echoes the canonical options the job ran with.
	Options *JobOptions `json:"options,omitempty"`
	// Progress is set for scene jobs.
	Progress *TileProgress `json:"progress,omitempty"`
	// Trace summarizes the job's recorded stage spans by stage name
	// (full timeline via Client.Trace).
	Trace     map[string]StageSummary `json:"trace,omitempty"`
	Submitted time.Time               `json:"submitted"`
	Started   *time.Time              `json:"started,omitempty"`
	Finished  *time.Time              `json:"finished,omitempty"`
	Result    *ResultSummary          `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool { return j.State.Terminal() }

// SceneInfo is a registered scene's snapshot.
type SceneInfo struct {
	ID         string    `json:"id"`
	Width      int       `json:"width"`
	Height     int       `json:"height"`
	Bands      int       `json:"bands"`
	Interleave string    `json:"interleave"`
	DataType   int       `json:"data_type"`
	Bytes      int64     `json:"bytes"`
	Digest     string    `json:"digest,omitempty"`
	Registered time.Time `json:"registered"`
	// LastDoneJob is the job whose composite the scene's v1 result
	// endpoint serves (empty until a fuse completes).
	LastDoneJob string `json:"last_done_job,omitempty"`
}

// Stats is the pool's counter snapshot.
type Stats struct {
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Running       int     `json:"running"`
	Submitted     int64   `json:"submitted"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed"`
	Rejected      int64   `json:"rejected"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheSize     int     `json:"cache_size"`
	Throughput    float64 `json:"throughput_jobs_per_s"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Cluster is set when the service runs in cluster mode.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Store is set when the service runs with a durable control plane
	// (fusiond -journal).
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the durable-control-plane section of Stats: write-ahead
// journal activity, boot recovery, and the result cache's disk-spill
// tier.
type StoreStats struct {
	JournalRecords int64 `json:"journal_records"`
	RecoveredJobs  int64 `json:"recovered_jobs"`
	SpillHits      int64 `json:"spill_hits"`
	SpillMisses    int64 `json:"spill_misses"`
	SpilledEntries int   `json:"spilled_entries"`
	SpilledBytes   int64 `json:"spilled_bytes"`
}

// ClusterStats is the cluster-mode section of Stats: fleet size,
// degradations, and the resilient runtime's aggregated failure-detection
// and regeneration counters.
type ClusterStats struct {
	Addr          string `json:"addr"`
	Workers       int    `json:"workers"`
	LiveWorkers   int    `json:"live_workers"`
	Replication   int    `json:"replication"`
	Jobs          int64  `json:"jobs"`
	Fallbacks     int64  `json:"fallbacks"`
	Detections    int64  `json:"detections"`
	Regenerations int64  `json:"regenerations"`
	ViewChanges   int64  `json:"view_changes"`
}
